//! Open-loop (saturation) workload driving: latency under offered load.
//!
//! The round-based [`crate::driver::WorkloadDriver`] is **closed-loop**: it
//! waits for every transaction of a round before issuing the next round, so
//! the measured system is never offered more load than it just proved it
//! can complete — by construction it cannot show how latency degrades as
//! load approaches saturation.  This module drives the cluster **open
//! loop**: arrival times are fixed up front as a deterministic virtual-time
//! schedule generated from `(seed, rate)`, and transactions arrive at the
//! configured rate regardless of completions.  Latency is measured from
//! the *scheduled arrival* (not the moment the client got around to
//! issuing), so client-side queueing delay — the signature of saturation —
//! is part of every sample, and the p50/p99-vs-offered-rate curves emitted
//! by [`rate_sweep`] show the knee the SNOW latency argument is about.
//!
//! # Arrival model
//!
//! Inter-arrival gaps are exponential (a Poisson process) with mean
//! `1000 / rate` ticks, drawn from a dedicated arrival RNG; transaction
//! bodies (read/write mix, Zipf object choice, round-robin client
//! assignment) come from the ordinary [`WorkloadGenerator`].  The model
//! keeps the per-client well-formedness rule — one outstanding transaction
//! per client — by queueing each client's arrivals FIFO and *injecting*
//! the next one only when the client frees; its scheduled time is
//! preserved, so a busy client's next transaction starts late and the
//! delay shows up as latency.
//!
//! # Saturation physics (serial engine)
//!
//! Every dispatch advances the virtual clock by at least one tick, so the
//! serial engine's service capacity is 1 event/tick; a transaction costing
//! `E` dispatch events saturates the system at an offered rate of about
//! `1000 / E` per kilotick.  The default sweep rates bracket that knee.
//!
//! # Determinism
//!
//! The schedule is a pure function of `(workload spec, rate, arrival
//! seed)`; the execution is a pure function of the schedule, the scheduler
//! seed and the shard count — so open-loop histories are bit-identical
//! across runs (pinned by `tests/open_loop.rs`).

use crate::driver::{drain_into, finish_stream, CheckMode};
use crate::generator::{WorkloadGenerator, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use snow_checker::{check_auto, LatencyStats, Verdict};
use snow_core::{ClientId, History, Result, SystemConfig, TxId, TxKind, TxSpec};
use snow_protocols::{
    build_cluster_observed, build_cluster_on, Cluster, ExecutorKind, ProtocolKind, SchedulerKind,
};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Parameters of one open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopSpec {
    /// The transaction mix (read fraction, objects per tx, Zipf skew, body
    /// seed).
    pub workload: WorkloadSpec,
    /// Offered load: mean arrivals per 1000 virtual ticks (one kilotick).
    pub rate: u64,
    /// Total arrivals in the schedule.
    pub arrivals: usize,
    /// Seed of the arrival-time RNG (independent of the body seed, so the
    /// same mix can be offered at different rates with identical bodies).
    pub arrival_seed: u64,
}

impl OpenLoopSpec {
    /// A TAO-like mix at `rate` arrivals/kilotick, sized for benchmarks.
    pub fn tao_like(rate: u64) -> Self {
        OpenLoopSpec {
            workload: WorkloadSpec::tao_like(),
            rate,
            arrivals: 400,
            arrival_seed: 7,
        }
    }
}

/// One scheduled arrival: at virtual time `at`, `client` invokes `spec`.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Scheduled arrival time (virtual ticks).
    pub at: u64,
    /// The arriving client (round-robin per role, from the generator).
    pub client: ClientId,
    /// The transaction body.
    pub spec: TxSpec,
}

/// Generates the deterministic arrival schedule of `spec` against
/// `config`: exponential inter-arrival gaps (mean `1000 / rate` ticks,
/// minimum 1) with bodies drawn from the ordinary [`WorkloadGenerator`].
/// A pure function of `(spec, config)`.
///
/// # Panics
/// Panics if `spec.rate` is 0.
pub fn arrival_schedule(config: &SystemConfig, spec: &OpenLoopSpec) -> Vec<Arrival> {
    assert!(spec.rate > 0, "open-loop rate must be at least 1 per kilotick");
    let mut generator = WorkloadGenerator::new(config, spec.workload.clone());
    let mut rng = StdRng::seed_from_u64(spec.arrival_seed);
    let mean_gap = 1000.0 / spec.rate as f64;
    let mut at = 0u64;
    (0..spec.arrivals)
        .map(|_| {
            let u: f64 = rng.random_range(0.0..1.0);
            // Inverse-CDF exponential draw, floored at one tick so arrivals
            // stay strictly ordered per client.
            let gap = (-mean_gap * (1.0 - u).ln()).round().max(1.0) as u64;
            at += gap;
            let tx = generator.next_tx();
            Arrival { at, client: tx.client, spec: tx.spec }
        })
        .collect()
}

/// Summary of one open-loop run at a fixed offered rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenLoopReport {
    /// Offered load (nominal arrivals per kilotick, from the spec).
    pub offered_rate: u64,
    /// The schedule's realized offered rate: arrivals per kilotick of
    /// schedule span.  Slightly below nominal because inter-arrival gaps
    /// are floored at one tick and rounded.
    pub realized_offered_rate: f64,
    /// Completed transactions per kilotick of run duration.
    pub achieved_rate: f64,
    /// Arrivals scheduled.
    pub issued: usize,
    /// Transactions that completed.
    pub completed: usize,
    /// Virtual-time span of the run (first arrival to last event).
    pub duration: u64,
    /// Latency from *scheduled arrival* to RESP, all transactions
    /// (virtual ticks; includes client-side queueing delay).
    pub latency: LatencyStats,
    /// Latency of the READ transactions only.
    pub read_latency: LatencyStats,
    /// True once the system failed to keep up with the offered load
    /// (achieved < 95% of the *realized* offered rate): the saturation
    /// knee.
    pub saturated: bool,
}

/// Drives one open-loop run against an already-built cluster.  Returns the
/// history (checker-ready) and the report.
///
/// The cluster must be freshly built (no prior transactions) and deployed
/// over the same `config` the schedule was generated for.
pub fn drive_open_loop(
    cluster: &mut dyn Cluster,
    config: &SystemConfig,
    spec: &OpenLoopSpec,
) -> (History, OpenLoopReport) {
    drive_open_loop_tapped(cluster, config, spec, &mut |_| {})
}

/// [`drive_open_loop`] with a hook called after every completion wave —
/// the streaming check mode drains freshly committed transactions into a
/// [`snow_checker::StreamChecker`] here, while the run is still going.
fn drive_open_loop_tapped(
    cluster: &mut dyn Cluster,
    config: &SystemConfig,
    spec: &OpenLoopSpec,
    tap: &mut dyn FnMut(&mut dyn Cluster),
) -> (History, OpenLoopReport) {
    let schedule = arrival_schedule(config, spec);
    let issued = schedule.len();
    let span = schedule.last().map_or(1, |a| a.at).max(1);
    // Per-client FIFO arrival queues (BTreeMap: deterministic iteration for
    // the initial injections).
    let mut queues: BTreeMap<ClientId, VecDeque<(u64, TxSpec)>> = BTreeMap::new();
    for arrival in schedule {
        queues
            .entry(arrival.client)
            .or_default()
            .push_back((arrival.at, arrival.spec));
    }
    struct Meta {
        client: ClientId,
        scheduled_at: u64,
        is_read: bool,
    }
    let mut meta: HashMap<TxId, Meta> = HashMap::with_capacity(issued);
    let start = cluster.now();
    fn inject(
        cluster: &mut dyn Cluster,
        client: ClientId,
        queues: &mut BTreeMap<ClientId, VecDeque<(u64, TxSpec)>>,
        meta: &mut HashMap<TxId, Meta>,
    ) -> Option<TxId> {
        let (at, spec) = queues.get_mut(&client)?.pop_front()?;
        let is_read = spec.kind() == TxKind::Read;
        let tx = cluster.invoke_at(at, client, spec);
        meta.insert(tx, Meta { client, scheduled_at: at, is_read });
        Some(tx)
    }
    // One outstanding transaction per client: inject each client's first
    // arrival, then refill a client's slot whenever it frees.
    let clients: Vec<ClientId> = queues.keys().copied().collect();
    let mut active: Vec<TxId> = clients
        .iter()
        .filter_map(|&c| inject(cluster, c, &mut queues, &mut meta))
        .collect();
    while !active.is_empty() {
        if cluster.run_until_any_complete(&active).is_none() {
            break; // quiescent with watched work incomplete: nothing can finish
        }
        tap(cluster);
        let mut next_active = Vec::with_capacity(active.len());
        for tx in active {
            if cluster.is_complete(tx) {
                let client = meta[&tx].client;
                if let Some(new_tx) = inject(cluster, client, &mut queues, &mut meta) {
                    next_active.push(new_tx);
                }
            } else {
                next_active.push(tx);
            }
        }
        active = next_active;
    }
    let history = cluster.history();
    let mut latencies = Vec::with_capacity(issued);
    let mut read_latencies = Vec::new();
    for (tx, m) in &meta {
        let Some(responded_at) = history.get(*tx).and_then(|r| r.responded_at) else {
            continue;
        };
        let latency = responded_at.saturating_sub(m.scheduled_at);
        latencies.push(latency);
        if m.is_read {
            read_latencies.push(latency);
        }
    }
    let completed = latencies.len();
    let duration = cluster.now().saturating_sub(start).max(1);
    let achieved_rate = completed as f64 * 1000.0 / duration as f64;
    let realized_offered_rate = issued as f64 * 1000.0 / span as f64;
    let report = OpenLoopReport {
        offered_rate: spec.rate,
        realized_offered_rate,
        achieved_rate,
        issued,
        completed,
        duration,
        latency: LatencyStats::from_samples(&latencies),
        read_latency: LatencyStats::from_samples(&read_latencies),
        saturated: achieved_rate < 0.95 * realized_offered_rate,
    };
    (history, report)
}

/// Builds a cluster of `protocol` on `executor` and drives `spec` open
/// loop.  The trace is bounded (window 4096) and the step cap removed, so
/// long saturation runs stay O(in-flight) in memory.
pub fn run_open_loop(
    protocol: ProtocolKind,
    config: &SystemConfig,
    spec: &OpenLoopSpec,
    scheduler: SchedulerKind,
    executor: ExecutorKind,
) -> Result<(History, OpenLoopReport)> {
    let mut cluster = build_cluster_on(protocol, config, scheduler, executor, u64::MAX, Some(4096))?;
    Ok(drive_open_loop(cluster.as_mut(), config, spec))
}

/// [`run_open_loop`] with observability recording: the cluster is built
/// via [`snow_protocols::build_cluster_observed`], so every shard's
/// dispatch core records its virtual-time event stream
/// (`InvocationDispatched`, `MessageSent`, `MessageDelivered`,
/// `EpochBarrierCrossed`, `TxCommitted`), returned alongside the report.
/// Feed the events to `snow_obs::perfetto_json` for a Perfetto trace or
/// `snow_obs::fold_events` for a metrics snapshot.
pub fn run_open_loop_observed(
    protocol: ProtocolKind,
    config: &SystemConfig,
    spec: &OpenLoopSpec,
    scheduler: SchedulerKind,
    executor: ExecutorKind,
) -> Result<(History, OpenLoopReport, Vec<snow_protocols::deploy::ShardEvent>)> {
    let mut cluster =
        build_cluster_observed(protocol, config, scheduler, executor, u64::MAX, Some(4096))?;
    let (history, report) = drive_open_loop(cluster.as_mut(), config, spec);
    let events = cluster.drain_obs_events();
    Ok((history, report, events))
}

/// [`run_open_loop`] followed by a full-history strict-serializability
/// check ([`snow_checker::check_auto`]), mirroring
/// [`crate::driver::WorkloadDriver::run_checked`].
pub fn run_open_loop_checked(
    protocol: ProtocolKind,
    config: &SystemConfig,
    spec: &OpenLoopSpec,
    scheduler: SchedulerKind,
    executor: ExecutorKind,
) -> Result<(History, OpenLoopReport, Verdict)> {
    run_open_loop_checked_mode(protocol, config, spec, scheduler, executor, CheckMode::PostHoc)
}

/// [`run_open_loop_checked`] with an explicit [`CheckMode`].
///
/// In [`CheckMode::Streaming`] a [`snow_checker::StreamChecker`] rides
/// along with the run: after every completion wave the cluster's commit
/// log is drained into the checker ([`Cluster::drain_commits`]) and the
/// certification frontier advances past everything the simulator can no
/// longer invoke before — so the verdict is produced incrementally, in
/// RESP order, with memory bounded by the live window instead of the full
/// history.  Works unchanged on both substrates (serial and sharded); on
/// the sharded one the drain itself holds back commits until they are
/// globally final.  The verdicts of the two modes always agree.
pub fn run_open_loop_checked_mode(
    protocol: ProtocolKind,
    config: &SystemConfig,
    spec: &OpenLoopSpec,
    scheduler: SchedulerKind,
    executor: ExecutorKind,
    mode: CheckMode,
) -> Result<(History, OpenLoopReport, Verdict)> {
    match mode {
        CheckMode::PostHoc => {
            let (history, report) = run_open_loop(protocol, config, spec, scheduler, executor)?;
            let verdict = check_auto(&history);
            Ok((history, report, verdict))
        }
        CheckMode::Streaming => {
            let mut cluster =
                build_cluster_on(protocol, config, scheduler, executor, u64::MAX, Some(4096))?;
            let mut checker = snow_checker::StreamChecker::new();
            let (history, report) =
                drive_open_loop_tapped(cluster.as_mut(), config, spec, &mut |cluster| {
                    drain_into(&mut checker, cluster);
                });
            let verdict = finish_stream(checker, cluster.as_mut(), &history);
            Ok((history, report, verdict))
        }
    }
}

/// One latency-vs-throughput curve: the per-rate reports of one protocol,
/// in offered-rate order, with the saturation knee (the first saturated
/// rate, if the sweep reached one).
#[derive(Debug, Clone)]
pub struct RateSweep {
    /// The swept protocol.
    pub protocol: ProtocolKind,
    /// One report per offered rate, in sweep order.
    pub points: Vec<OpenLoopReport>,
}

impl RateSweep {
    /// The first offered rate the system could not keep up with, if any.
    pub fn knee(&self) -> Option<u64> {
        self.points.iter().find(|p| p.saturated).map(|p| p.offered_rate)
    }
}

/// Sweeps `protocol` across `rates` (arrivals per kilotick), driving the
/// same `(workload, arrival_seed, arrivals)` schedule shape at each rate
/// against a fresh cluster — the latency-vs-throughput curve of the
/// protocol.  `BENCH_simcore.json`'s `open_loop` section is generated from
/// these sweeps.
pub fn rate_sweep(
    protocol: ProtocolKind,
    config: &SystemConfig,
    base: &OpenLoopSpec,
    rates: &[u64],
    scheduler: SchedulerKind,
    executor: ExecutorKind,
) -> Result<RateSweep> {
    let mut points = Vec::with_capacity(rates.len());
    for &rate in rates {
        let spec = OpenLoopSpec { rate, ..base.clone() };
        let (_, report) = run_open_loop(protocol, config, &spec, scheduler, executor)?;
        points.push(report);
    }
    Ok(RateSweep { protocol, points })
}

/// Sweeps Zipf skew at a fixed offered rate: hot-key contention curves.
/// Returns `(exponent, report)` pairs in sweep order.  Contention-free
/// protocols (AlgB/AlgC reads) barely move; the blocking baseline's p99
/// degrades as the hot key serializes its lock queue.
pub fn zipf_sweep(
    protocol: ProtocolKind,
    config: &SystemConfig,
    base: &OpenLoopSpec,
    exponents: &[f64],
    scheduler: SchedulerKind,
    executor: ExecutorKind,
) -> Result<Vec<(f64, OpenLoopReport)>> {
    let mut points = Vec::with_capacity(exponents.len());
    for &exponent in exponents {
        let spec = OpenLoopSpec {
            workload: WorkloadSpec { zipf_exponent: exponent, ..base.workload.clone() },
            ..base.clone()
        };
        let (_, report) = run_open_loop(protocol, config, &spec, scheduler, executor)?;
        points.push((exponent, report));
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> ExecutorKind {
        ExecutorKind::SerialSim
    }

    fn latency_sched() -> SchedulerKind {
        SchedulerKind::Latency { seed: 11, min: 1, max: 16 }
    }

    #[test]
    fn schedule_is_deterministic_and_rate_shaped() {
        let config = SystemConfig::mwmr(4, 4, 4);
        let spec = OpenLoopSpec { arrivals: 500, ..OpenLoopSpec::tao_like(50) };
        let a = arrival_schedule(&config, &spec);
        let b = arrival_schedule(&config, &spec);
        assert_eq!(a, b, "schedule must be a pure function of (seed, rate)");
        assert_eq!(a.len(), 500);
        // Mean gap ≈ 1000/rate = 20 ticks: the 500-arrival span should be
        // within a factor of two of 10_000 ticks.
        let span = a.last().unwrap().at;
        assert!((5_000..20_000).contains(&span), "span {span}");
        // Arrival times strictly increase (gaps are floored at 1).
        assert!(a.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn different_rates_reuse_the_same_bodies() {
        let config = SystemConfig::mwmr(4, 4, 4);
        let slow = arrival_schedule(&config, &OpenLoopSpec::tao_like(10));
        let fast = arrival_schedule(&config, &OpenLoopSpec::tao_like(200));
        assert_eq!(slow.len(), fast.len());
        for (s, f) in slow.iter().zip(&fast) {
            assert_eq!(s.client, f.client);
            assert_eq!(s.spec, f.spec);
            assert!(s.at >= f.at, "slower rate must not arrive earlier");
        }
    }

    #[test]
    fn low_rate_run_keeps_up_and_high_rate_saturates() {
        let config = SystemConfig::mwmr(4, 4, 4);
        let base = OpenLoopSpec { arrivals: 300, ..OpenLoopSpec::tao_like(0).clone() };
        // Far below the ~1000/E knee: the system keeps up.
        let spec = OpenLoopSpec { rate: 20, ..base.clone() };
        let (history, low) =
            run_open_loop(ProtocolKind::AlgB, &config, &spec, latency_sched(), serial()).unwrap();
        assert_eq!(low.completed, 300);
        assert_eq!(history.incomplete_count(), 0);
        assert!(!low.saturated, "rate 20: achieved {:.1}", low.achieved_rate);
        // Far above it: arrivals outpace the 1-event/tick service capacity,
        // queueing delay accumulates, achieved rate caps out.
        let spec = OpenLoopSpec { rate: 400, ..base };
        let (_, high) =
            run_open_loop(ProtocolKind::AlgB, &config, &spec, latency_sched(), serial()).unwrap();
        assert!(high.saturated, "rate 400: achieved {:.1}", high.achieved_rate);
        assert!(
            high.latency.p99 > low.latency.p99,
            "saturation must inflate p99: {} vs {}",
            high.latency.p99,
            low.latency.p99
        );
    }

    #[test]
    fn sweep_finds_a_knee_and_is_checkable() {
        let config = SystemConfig::mwmr(4, 4, 4);
        let base = OpenLoopSpec { arrivals: 200, ..OpenLoopSpec::tao_like(0) };
        let sweep = rate_sweep(
            ProtocolKind::AlgC,
            &config,
            &base,
            &[20, 400],
            latency_sched(),
            serial(),
        )
        .unwrap();
        assert_eq!(sweep.points.len(), 2);
        assert_eq!(sweep.knee(), Some(400));
        let (_, report, verdict) = run_open_loop_checked(
            ProtocolKind::AlgC,
            &config,
            &OpenLoopSpec { rate: 100, ..base },
            latency_sched(),
            serial(),
        )
        .unwrap();
        assert_eq!(report.completed, 200);
        assert!(verdict.is_serializable(), "{verdict:?}");
    }

    #[test]
    fn zipf_sweep_varies_contention_only() {
        let config = SystemConfig::mwmr(2, 2, 2);
        let base = OpenLoopSpec {
            workload: WorkloadSpec::write_heavy(),
            rate: 30,
            arrivals: 80,
            arrival_seed: 3,
        };
        let points = zipf_sweep(
            ProtocolKind::Blocking,
            &config,
            &base,
            &[0.0, 1.2],
            latency_sched(),
            serial(),
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        for (exp, report) in &points {
            assert_eq!(report.issued, 80, "exponent {exp}");
            assert!(report.completed > 0, "exponent {exp}");
        }
    }

    #[test]
    fn streaming_open_loop_agrees_with_post_hoc_on_both_substrates() {
        let config = SystemConfig::mwmr(4, 4, 4);
        let base = OpenLoopSpec { arrivals: 150, ..OpenLoopSpec::tao_like(0) };
        for executor in [ExecutorKind::SerialSim, ExecutorKind::ParallelSim { shards: 4 }] {
            for rate in [30, 300] {
                let spec = OpenLoopSpec { rate, ..base.clone() };
                let (history, _, posthoc) = run_open_loop_checked_mode(
                    ProtocolKind::AlgB,
                    &config,
                    &spec,
                    latency_sched(),
                    executor,
                    CheckMode::PostHoc,
                )
                .unwrap();
                let (stream_history, report, stream) = run_open_loop_checked_mode(
                    ProtocolKind::AlgB,
                    &config,
                    &spec,
                    latency_sched(),
                    executor,
                    CheckMode::Streaming,
                )
                .unwrap();
                assert_eq!(
                    format!("{history:?}"),
                    format!("{stream_history:?}"),
                    "{executor:?}/rate {rate}: the check mode changed the run"
                );
                assert_eq!(report.issued, 150);
                assert!(
                    posthoc.is_serializable() && stream.is_serializable(),
                    "{executor:?}/rate {rate}: post-hoc {posthoc:?} vs stream {stream:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "rate must be")]
    fn zero_rate_is_rejected() {
        let config = SystemConfig::mwmr(2, 1, 1);
        let _ = arrival_schedule(&config, &OpenLoopSpec::tao_like(0));
    }
}
