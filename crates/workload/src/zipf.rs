//! A Zipfian sampler over `{0, …, n-1}` with exponent `s`.
//!
//! Implemented by inverse-CDF lookup over the precomputed cumulative weights
//! `w_i = 1 / (i+1)^s`, which is exact and fast enough for workload
//! generation (the table is built once per generator).

use rand::Rng;

/// A Zipfian distribution over `n` items with skew exponent `s`.
///
/// `s = 0` is the uniform distribution; `s ≈ 0.99` is the YCSB default and a
/// common model for social-graph read popularity.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative / non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Normalise.
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the distribution has a single item.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples an index in `0..n`, most popular first.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite weights"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// The probability mass of item `i`.
    pub fn mass(&self, i: usize) -> f64 {
        if i >= self.cumulative.len() {
            return 0.0;
        }
        if i == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[i] - self.cumulative[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn masses_sum_to_one_and_decrease() {
        let z = Zipf::new(100, 0.99);
        let total: f64 = (0..100).map(|i| z.mass(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.mass(0) > z.mass(1));
        assert!(z.mass(1) > z.mass(50));
        assert_eq!(z.mass(1000), 0.0);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
    }

    #[test]
    fn uniform_when_exponent_is_zero() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.mass(i) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_are_in_range_and_skewed() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            let i = z.sample(&mut rng);
            assert!(i < 50);
            counts[i] += 1;
        }
        // The most popular item should dominate the median item.
        assert!(counts[0] > counts[25] * 4);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(20, 0.8);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_items_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
