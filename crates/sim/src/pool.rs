//! The indexed in-flight message pool: the simulator's event-queue core.
//!
//! [`MessagePool`] keeps every sent-but-undelivered message and answers the
//! three access patterns the engine needs, each with its own index:
//!
//! * **Earliest-delivery pop** — a [`BinaryHeap`] keyed by
//!   `(delivery_time, MsgId)` gives `FifoScheduler`/`LatencyScheduler` an
//!   O(log n) [`MessagePool::pop_earliest`] instead of the old O(n) scan +
//!   O(n) `Vec::remove`.  Entries are removed lazily: an entry whose id is
//!   no longer live (delivered adversarially via
//!   [`crate::Simulation::deliver_where`]) is skipped on pop.
//! * **Removal by id** — messages live in a slot vector with O(1)
//!   swap-remove; a dense `MsgId → slot` table keeps slots addressable.
//! * **Rank selection in send order** — a Fenwick (binary indexed) tree over
//!   the id space marks live ids, giving O(log n)
//!   [`MessagePool::nth_live`] rank selection and an ascending
//!   id-order iterator.  `RandomScheduler` uses rank selection so a uniform
//!   draw over the pool picks *the k-th message in send order* — exactly
//!   the semantics of indexing the old send-ordered `Vec`, which keeps
//!   seeded schedules (and therefore golden histories) bit-identical across
//!   the engine refactor.
//!
//! Memory: the id-indexed tables are a **sliding window** over the id
//! space.  Delivered ids at the front of the window are trimmed (and the
//! Fenwick tree rebuilt) once the dead prefix reaches half the window, so a
//! long run's index footprint is O(in-flight), not O(messages-ever-sent) —
//! the property that keeps open-loop saturation runs flat in memory.  Live
//! ids below the window base (cross-shard imports racing a trim) fall back
//! to a `BTreeMap` side-table; it is empty on the serial path.  `MsgId`s
//! themselves stay monotone — only the *index* is windowed — so rank
//! selection still means "k-th live message in send order" and seeded
//! schedules (golden histories) are unchanged.  The delivery heap holds at
//! most one entry per sent message; heap-popping schedulers drain it as the
//! run progresses, while schedulers that never pop (e.g. the random
//! adversary) leave one stale entry per send until the pool is dropped —
//! the same order of growth as the trace's action log.

use crate::message::{MsgId, PendingMessage};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// A Fenwick (binary indexed) tree over a growable 0/1 array, supporting
/// O(log n) set/clear, prefix counts, and rank selection.
#[derive(Debug, Clone, Default)]
pub struct Fenwick {
    /// 1-indexed partial sums: `tree[i]` covers `(i - lowbit(i), i]`.
    tree: Vec<u32>,
    /// Number of live (set) positions.
    count: usize,
}

impl Fenwick {
    /// An empty tree over an empty id space.
    pub fn new() -> Self {
        Fenwick::default()
    }

    /// Number of positions the tree covers (the id space so far).
    pub fn capacity(&self) -> usize {
        self.tree.len()
    }

    /// Number of set positions.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Extends the id space by one (unset) position.
    pub fn append_zero(&mut self) {
        // Appending index n (1-based) must initialise tree[n] to the sum of
        // the range (n - lowbit(n), n], all of whose members already exist.
        let n = self.tree.len() + 1;
        let lowbit = n & n.wrapping_neg();
        let value = self.prefix(n - 1) - self.prefix(n - lowbit);
        self.tree.push(value as u32);
    }

    /// Sum of positions `1..=i` (1-based internal indexing).
    fn prefix(&self, mut i: usize) -> usize {
        let mut sum = 0usize;
        while i > 0 {
            sum += self.tree[i - 1] as usize;
            i -= i & i.wrapping_neg();
        }
        sum
    }

    fn add(&mut self, index: usize, delta: i32) {
        let mut i = index + 1;
        while i <= self.tree.len() {
            self.tree[i - 1] = (self.tree[i - 1] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Marks position `index` live.  The position must be within capacity
    /// and currently unset.
    pub fn set(&mut self, index: usize) {
        self.add(index, 1);
        self.count += 1;
    }

    /// Clears position `index`.  The position must be currently set.
    pub fn clear(&mut self, index: usize) {
        self.add(index, -1);
        self.count -= 1;
    }

    /// The position holding the `k`-th live entry (0-based, ascending), or
    /// `None` if fewer than `k + 1` entries are live.
    pub fn kth(&self, k: usize) -> Option<usize> {
        if k >= self.count {
            return None;
        }
        let mut remaining = k + 1;
        let mut pos = 0usize; // 1-based prefix position
        let mut step = self.tree.len().next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= self.tree.len() && (self.tree[next - 1] as usize) < remaining {
                remaining -= self.tree[next - 1] as usize;
                pos = next;
            }
            step >>= 1;
        }
        Some(pos) // pos is 1-based index of the match, i.e. 0-based position
    }

    /// Builds a tree from a liveness bitmap in O(n) (used when the message
    /// pool trims its index window).
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut tree: Vec<u32> = bits.into_iter().map(u32::from).collect();
        let count = tree.iter().map(|&v| v as usize).sum();
        let n = tree.len();
        for i in 1..=n {
            let parent = i + (i & i.wrapping_neg());
            if parent <= n {
                tree[parent - 1] += tree[i - 1];
            }
        }
        Fenwick { tree, count }
    }
}

/// The set of in-flight messages, indexed for O(log n) scheduling.
///
/// The `MsgId → slot` index is a sliding window: ids below `base` that have
/// been retired are trimmed away, so the index stays O(in-flight) no matter
/// how many messages a run sends (satellite of ISSUE 6 — the previous dense
/// table grew monotonically with every id ever seen).
#[derive(Debug, Clone)]
pub struct MessagePool<M> {
    /// Live messages in arbitrary slot order (swap-remove).
    slots: Vec<PendingMessage<M>>,
    /// Windowed `MsgId → slot` table: `window[id - base]`; [`DEAD`] marks
    /// delivered/unknown ids.
    window: Vec<usize>,
    /// First id covered by `window`.
    base: u64,
    /// Number of leading [`DEAD`] entries of `window` already verified
    /// (monotone between trims; reset if an import lands inside it).
    dead_prefix: usize,
    /// Live ids below `base` — cross-shard imports that raced a trim.
    /// Always empty on the serial path; iterated before the window by
    /// rank selection (every old id precedes every windowed id).
    old: BTreeMap<u64, usize>,
    /// Live-id marks over the window's offsets, for rank selection.
    live: Fenwick,
    /// Delivery queue keyed by `(delivery_time, id)`; entries for dead ids
    /// are skipped lazily on pop.
    queue: BinaryHeap<Reverse<(u64, u64)>>,
}

const DEAD: usize = usize::MAX;

/// Minimum dead prefix before a trim is worth a Fenwick rebuild.
const TRIM_MIN: usize = 64;

impl<M> Default for MessagePool<M> {
    fn default() -> Self {
        MessagePool {
            slots: Vec::new(),
            window: Vec::new(),
            base: 0,
            dead_prefix: 0,
            old: BTreeMap::new(),
            live: Fenwick::new(),
            queue: BinaryHeap::new(),
        }
    }
}

impl<M> MessagePool<M> {
    /// An empty pool.
    pub fn new() -> Self {
        MessagePool::default()
    }

    /// Number of in-flight messages.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot holding live message `id`, or `None`.
    fn slot_index(&self, id: u64) -> Option<usize> {
        if id >= self.base {
            match self.window.get((id - self.base) as usize) {
                Some(&slot) if slot != DEAD => Some(slot),
                _ => None,
            }
        } else {
            self.old.get(&id).copied()
        }
    }

    /// Points the index entry for live message `id` at `slot`.
    fn set_slot(&mut self, id: u64, slot: usize) {
        if id >= self.base {
            self.window[(id - self.base) as usize] = slot;
        } else {
            self.old.insert(id, slot);
        }
    }

    /// Advances the verified dead prefix and, once it reaches both
    /// [`TRIM_MIN`] and half the window, slides the window base past it —
    /// amortized O(1) per message over a run.
    fn maybe_trim(&mut self) {
        while self.dead_prefix < self.window.len() && self.window[self.dead_prefix] == DEAD {
            self.dead_prefix += 1;
        }
        if self.dead_prefix >= TRIM_MIN && self.dead_prefix * 2 >= self.window.len() {
            self.window.drain(..self.dead_prefix);
            self.base += self.dead_prefix as u64;
            self.dead_prefix = 0;
            self.live = Fenwick::from_bits(self.window.iter().map(|&slot| slot != DEAD));
        }
    }

    /// Inserts a newly sent message.  Its delivery-queue key is
    /// `deliver_at` when the scheduler stamped one, else the send time
    /// (under a monotone clock both orders FIFO delivery by send order).
    ///
    /// # Panics
    /// Panics if a message with the same id is already live.
    pub fn insert(&mut self, msg: PendingMessage<M>) {
        let id = msg.id.0;
        assert!(
            self.slot_index(id).is_none(),
            "duplicate in-flight message {}",
            msg.id
        );
        let key = msg.delivery_key();
        let slot = self.slots.len();
        if id >= self.base {
            let offset = (id - self.base) as usize;
            while self.window.len() <= offset {
                self.window.push(DEAD);
                self.live.append_zero();
            }
            self.window[offset] = slot;
            self.live.set(offset);
            // An import landing inside the verified dead prefix reopens it.
            if offset < self.dead_prefix {
                self.dead_prefix = offset;
            }
        } else {
            // Cross-shard import below the window base (raced a trim).
            self.old.insert(id, slot);
        }
        self.queue.push(Reverse((key, id)));
        self.slots.push(msg);
        self.maybe_trim();
    }

    /// True if `id` is in flight.
    pub fn contains(&self, id: MsgId) -> bool {
        self.slot_index(id.0).is_some()
    }

    /// The in-flight message `id`, if any.
    pub fn get(&self, id: MsgId) -> Option<&PendingMessage<M>> {
        self.slot_index(id.0).map(|slot| &self.slots[slot])
    }

    /// Removes and returns message `id` in O(1) (swap-remove) plus an
    /// O(log n) live-index update.  Any delivery-queue entry for `id`
    /// becomes stale and is skipped lazily.
    pub fn remove(&mut self, id: MsgId) -> Option<PendingMessage<M>> {
        let slot = self.slot_index(id.0)?;
        if id.0 >= self.base {
            let offset = (id.0 - self.base) as usize;
            self.window[offset] = DEAD;
            self.live.clear(offset);
        } else {
            self.old.remove(&id.0);
        }
        let msg = self.slots.swap_remove(slot);
        if slot < self.slots.len() {
            let moved_id = self.slots[slot].id.0;
            self.set_slot(moved_id, slot);
        }
        self.maybe_trim();
        Some(msg)
    }

    /// Pops the live message with the smallest `(delivery_time, id)` key
    /// from the delivery queue — amortized O(log n).  The message stays in
    /// the pool (callers deliver it via [`MessagePool::remove`]); its queue
    /// entry is consumed, so each call yields a distinct message.
    pub fn pop_earliest(&mut self) -> Option<MsgId> {
        while let Some(Reverse((_, id))) = self.queue.pop() {
            if self.contains(MsgId(id)) {
                return Some(MsgId(id));
            }
        }
        None
    }

    /// The `(delivery_time, id)` key of the live message
    /// [`MessagePool::pop_earliest`] would yield, without consuming its
    /// queue entry — amortized O(log n) (stale entries for dead ids are
    /// discarded on the way).  The dispatch core uses this to decide
    /// whether the next delivery falls inside the current watermark
    /// (`u64::MAX` on the serial path, the epoch's virtual-time watermark
    /// on the sharded path).
    pub fn peek_earliest(&mut self) -> Option<(u64, MsgId)> {
        while let Some(Reverse((key, id))) = self.queue.peek().copied() {
            if self.contains(MsgId(id)) {
                return Some((key, MsgId(id)));
            }
            self.queue.pop();
        }
        None
    }

    /// The `k`-th live message in ascending id (send) order — O(log n)
    /// (plus O(|old|) when pre-window imports exist; every old id precedes
    /// every windowed id, so the global order is old-ids-then-window).
    pub fn nth_live(&self, k: usize) -> Option<MsgId> {
        if k < self.old.len() {
            return self.old.keys().nth(k).map(|&id| MsgId(id));
        }
        self.live
            .kth(k - self.old.len())
            .map(|offset| MsgId(self.base + offset as u64))
    }

    /// Index-footprint diagnostic: `(window entries, pre-window side-table
    /// entries)`.  Regression tests use this to prove long runs stay
    /// O(in-flight) rather than O(ids-ever-seen).
    pub fn index_footprint(&self) -> (usize, usize) {
        (self.window.len(), self.old.len())
    }

    /// First id covered by the index window (ids below it are either
    /// retired or in the `old` side-table).
    pub fn window_base(&self) -> u64 {
        self.base
    }

    /// Iterates over in-flight messages in ascending id (send) order.
    /// Each step costs O(log n); adversarial drivers that scan for a
    /// matching message pay O(matches-scanned · log n) in total.
    pub fn iter(&self) -> impl Iterator<Item = &PendingMessage<M>> + '_ {
        (0..self.len()).map_while(move |k| self.nth_live(k).and_then(|id| self.get(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_core::{ClientId, ProcessId, ServerId};

    #[derive(Debug, Clone)]
    struct M;
    impl crate::message::SimMessage for M {}

    fn pending(id: u64, sent_at: u64, deliver_at: Option<u64>) -> PendingMessage<M> {
        PendingMessage {
            id: MsgId(id),
            src: ProcessId::Client(ClientId(0)),
            dst: ProcessId::Server(ServerId(0)),
            msg: M,
            sent_at,
            parent: None,
            deliver_at,
        }
    }

    #[test]
    fn fenwick_set_clear_select() {
        let mut f = Fenwick::new();
        for _ in 0..10 {
            f.append_zero();
        }
        for i in [2usize, 3, 5, 7] {
            f.set(i);
        }
        assert_eq!(f.count(), 4);
        assert_eq!(f.kth(0), Some(2));
        assert_eq!(f.kth(1), Some(3));
        assert_eq!(f.kth(2), Some(5));
        assert_eq!(f.kth(3), Some(7));
        assert_eq!(f.kth(4), None);
        f.clear(3);
        assert_eq!(f.kth(1), Some(5));
        // Appending after sets keeps partial sums correct.
        f.append_zero();
        f.set(10);
        assert_eq!(f.kth(3), Some(10));
        assert_eq!(f.count(), 4);
    }

    #[test]
    fn insert_remove_and_rank_selection() {
        let mut pool: MessagePool<M> = MessagePool::new();
        for id in 0..5 {
            pool.insert(pending(id, id, None));
        }
        assert_eq!(pool.len(), 5);
        assert!(pool.contains(MsgId(3)));
        // Rank order is id order regardless of slot shuffling.
        let removed = pool.remove(MsgId(1)).unwrap();
        assert_eq!(removed.id, MsgId(1));
        assert_eq!(pool.remove(MsgId(1)).map(|m| m.id), None);
        assert_eq!(pool.nth_live(0), Some(MsgId(0)));
        assert_eq!(pool.nth_live(1), Some(MsgId(2)));
        assert_eq!(pool.nth_live(3), Some(MsgId(4)));
        assert_eq!(pool.nth_live(4), None);
        let ids: Vec<u64> = pool.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![0, 2, 3, 4]);
    }

    #[test]
    fn pop_earliest_orders_by_delivery_time_then_id() {
        let mut pool: MessagePool<M> = MessagePool::new();
        pool.insert(pending(0, 0, Some(30)));
        pool.insert(pending(1, 0, Some(10)));
        pool.insert(pending(2, 0, Some(10)));
        pool.insert(pending(3, 0, Some(20)));
        let a = pool.pop_earliest().unwrap();
        pool.remove(a).unwrap();
        let b = pool.pop_earliest().unwrap();
        pool.remove(b).unwrap();
        let c = pool.pop_earliest().unwrap();
        pool.remove(c).unwrap();
        assert_eq!((a, b, c), (MsgId(1), MsgId(2), MsgId(3)));
    }

    #[test]
    fn pop_earliest_skips_adversarially_removed_messages() {
        let mut pool: MessagePool<M> = MessagePool::new();
        pool.insert(pending(0, 0, Some(5)));
        pool.insert(pending(1, 0, Some(6)));
        pool.remove(MsgId(0)).unwrap(); // delivered via deliver_where
        assert_eq!(pool.pop_earliest(), Some(MsgId(1)));
        pool.remove(MsgId(1)).unwrap();
        assert_eq!(pool.pop_earliest(), None);
        assert!(pool.is_empty());
    }

    #[test]
    fn index_stays_bounded_under_long_churn() {
        // Regression for ISSUE 6: the old dense `slot_of` table grew with
        // every id ever seen (200k entries here).  The windowed index must
        // stay O(in-flight) — a few hundred entries for 128 in flight.
        let mut pool: MessagePool<M> = MessagePool::new();
        const TOTAL: u64 = 200_000;
        const IN_FLIGHT: u64 = 128;
        for id in 0..TOTAL {
            pool.insert(pending(id, id, Some(id + 5)));
            if id >= IN_FLIGHT {
                pool.remove(MsgId(id - IN_FLIGHT)).unwrap();
            }
        }
        assert_eq!(pool.len(), IN_FLIGHT as usize);
        let (window, old) = pool.index_footprint();
        assert_eq!(old, 0, "serial-path churn must not populate the side-table");
        assert!(
            window < 1_024,
            "index window grew to {window} entries for {IN_FLIGHT} in flight"
        );
        assert!(pool.window_base() > TOTAL - 2 * IN_FLIGHT - 2 * 64);
        // The index still resolves the survivors, in send order.
        let ids: Vec<u64> = pool.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, (TOTAL - IN_FLIGHT..TOTAL).collect::<Vec<u64>>());
    }

    #[test]
    fn pre_window_imports_keep_global_send_order() {
        // Cross-shard imports can carry ids below the trimmed window base;
        // they must stay addressable and sort before every windowed id.
        let mut pool: MessagePool<M> = MessagePool::new();
        for id in 0..400 {
            pool.insert(pending(id, id, None));
        }
        for id in 0..300 {
            pool.remove(MsgId(id)).unwrap();
        }
        let base = pool.window_base();
        assert!(base > 0, "expected churn to trim the window");
        // An import whose id falls below the base lands in the side-table.
        let import = base - 1;
        pool.insert(pending(import, 0, None));
        let (_, old) = pool.index_footprint();
        assert_eq!(old, 1);
        assert!(pool.contains(MsgId(import)));
        assert_eq!(pool.nth_live(0), Some(MsgId(import)));
        assert_eq!(pool.nth_live(1), Some(MsgId(300)));
        let removed = pool.remove(MsgId(import)).unwrap();
        assert_eq!(removed.id, MsgId(import));
        assert_eq!(pool.index_footprint().1, 0);
        assert_eq!(pool.nth_live(0), Some(MsgId(300)));
    }

    #[test]
    #[should_panic]
    fn duplicate_ids_rejected() {
        let mut pool: MessagePool<M> = MessagePool::new();
        pool.insert(pending(4, 0, None));
        pool.insert(pending(4, 1, None));
    }
}
