//! The indexed in-flight message pool: the simulator's event-queue core.
//!
//! [`MessagePool`] keeps every sent-but-undelivered message and answers the
//! three access patterns the engine needs, each with its own index:
//!
//! * **Earliest-delivery pop** — a [`BinaryHeap`] keyed by
//!   `(delivery_time, MsgId)` gives `FifoScheduler`/`LatencyScheduler` an
//!   O(log n) [`MessagePool::pop_earliest`] instead of the old O(n) scan +
//!   O(n) `Vec::remove`.  Entries are removed lazily: an entry whose id is
//!   no longer live (delivered adversarially via
//!   [`crate::Simulation::deliver_where`]) is skipped on pop.
//! * **Removal by id** — messages live in a slot vector with O(1)
//!   swap-remove; a dense `MsgId → slot` table keeps slots addressable.
//! * **Rank selection in send order** — a Fenwick (binary indexed) tree over
//!   the id space marks live ids, giving O(log n)
//!   [`MessagePool::nth_live`] rank selection and an ascending
//!   id-order iterator.  `RandomScheduler` uses rank selection so a uniform
//!   draw over the pool picks *the k-th message in send order* — exactly
//!   the semantics of indexing the old send-ordered `Vec`, which keeps
//!   seeded schedules (and therefore golden histories) bit-identical across
//!   the engine refactor.
//!
//! Memory: the id-indexed tables grow with the total number of messages
//! ever sent (like the trace itself).  The heap holds at most one entry per
//! sent message; heap-popping schedulers drain it as the run progresses,
//! while schedulers that never pop (e.g. the random adversary) leave one
//! stale entry per send until the pool is dropped — the same order of
//! growth as the trace's action log.

use crate::message::{MsgId, PendingMessage};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A Fenwick (binary indexed) tree over a growable 0/1 array, supporting
/// O(log n) set/clear, prefix counts, and rank selection.
#[derive(Debug, Clone, Default)]
pub struct Fenwick {
    /// 1-indexed partial sums: `tree[i]` covers `(i - lowbit(i), i]`.
    tree: Vec<u32>,
    /// Number of live (set) positions.
    count: usize,
}

impl Fenwick {
    /// An empty tree over an empty id space.
    pub fn new() -> Self {
        Fenwick::default()
    }

    /// Number of positions the tree covers (the id space so far).
    pub fn capacity(&self) -> usize {
        self.tree.len()
    }

    /// Number of set positions.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Extends the id space by one (unset) position.
    pub fn append_zero(&mut self) {
        // Appending index n (1-based) must initialise tree[n] to the sum of
        // the range (n - lowbit(n), n], all of whose members already exist.
        let n = self.tree.len() + 1;
        let lowbit = n & n.wrapping_neg();
        let value = self.prefix(n - 1) - self.prefix(n - lowbit);
        self.tree.push(value as u32);
    }

    /// Sum of positions `1..=i` (1-based internal indexing).
    fn prefix(&self, mut i: usize) -> usize {
        let mut sum = 0usize;
        while i > 0 {
            sum += self.tree[i - 1] as usize;
            i -= i & i.wrapping_neg();
        }
        sum
    }

    fn add(&mut self, index: usize, delta: i32) {
        let mut i = index + 1;
        while i <= self.tree.len() {
            self.tree[i - 1] = (self.tree[i - 1] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Marks position `index` live.  The position must be within capacity
    /// and currently unset.
    pub fn set(&mut self, index: usize) {
        self.add(index, 1);
        self.count += 1;
    }

    /// Clears position `index`.  The position must be currently set.
    pub fn clear(&mut self, index: usize) {
        self.add(index, -1);
        self.count -= 1;
    }

    /// The position holding the `k`-th live entry (0-based, ascending), or
    /// `None` if fewer than `k + 1` entries are live.
    pub fn kth(&self, k: usize) -> Option<usize> {
        if k >= self.count {
            return None;
        }
        let mut remaining = k + 1;
        let mut pos = 0usize; // 1-based prefix position
        let mut step = self.tree.len().next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= self.tree.len() && (self.tree[next - 1] as usize) < remaining {
                remaining -= self.tree[next - 1] as usize;
                pos = next;
            }
            step >>= 1;
        }
        Some(pos) // pos is 1-based index of the match, i.e. 0-based position
    }
}

/// The set of in-flight messages, indexed for O(log n) scheduling.
#[derive(Debug, Clone)]
pub struct MessagePool<M> {
    /// Live messages in arbitrary slot order (swap-remove).
    slots: Vec<PendingMessage<M>>,
    /// Dense `MsgId → slot` table; [`DEAD`] marks delivered/unknown ids.
    slot_of: Vec<usize>,
    /// Live-id marks over the id space, for rank selection.
    live: Fenwick,
    /// Delivery queue keyed by `(delivery_time, id)`; entries for dead ids
    /// are skipped lazily on pop.
    queue: BinaryHeap<Reverse<(u64, u64)>>,
}

const DEAD: usize = usize::MAX;

impl<M> Default for MessagePool<M> {
    fn default() -> Self {
        MessagePool {
            slots: Vec::new(),
            slot_of: Vec::new(),
            live: Fenwick::new(),
            queue: BinaryHeap::new(),
        }
    }
}

impl<M> MessagePool<M> {
    /// An empty pool.
    pub fn new() -> Self {
        MessagePool::default()
    }

    /// Number of in-flight messages.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Inserts a newly sent message.  Its delivery-queue key is
    /// `deliver_at` when the scheduler stamped one, else the send time
    /// (under a monotone clock both orders FIFO delivery by send order).
    ///
    /// # Panics
    /// Panics if a message with the same id is already live.
    pub fn insert(&mut self, msg: PendingMessage<M>) {
        let id = msg.id.0 as usize;
        while self.slot_of.len() <= id {
            self.slot_of.push(DEAD);
            self.live.append_zero();
        }
        assert!(self.slot_of[id] == DEAD, "duplicate in-flight message {}", msg.id);
        let key = msg.delivery_key();
        self.slot_of[id] = self.slots.len();
        self.live.set(id);
        self.queue.push(Reverse((key, msg.id.0)));
        self.slots.push(msg);
    }

    /// True if `id` is in flight.
    pub fn contains(&self, id: MsgId) -> bool {
        self.slot_of
            .get(id.0 as usize)
            .is_some_and(|slot| *slot != DEAD)
    }

    /// The in-flight message `id`, if any.
    pub fn get(&self, id: MsgId) -> Option<&PendingMessage<M>> {
        let slot = *self.slot_of.get(id.0 as usize)?;
        if slot == DEAD {
            None
        } else {
            Some(&self.slots[slot])
        }
    }

    /// Removes and returns message `id` in O(1) (swap-remove) plus an
    /// O(log n) live-index update.  Any delivery-queue entry for `id`
    /// becomes stale and is skipped lazily.
    pub fn remove(&mut self, id: MsgId) -> Option<PendingMessage<M>> {
        let index = id.0 as usize;
        let slot = *self.slot_of.get(index)?;
        if slot == DEAD {
            return None;
        }
        self.slot_of[index] = DEAD;
        self.live.clear(index);
        let msg = self.slots.swap_remove(slot);
        if let Some(moved) = self.slots.get(slot) {
            self.slot_of[moved.id.0 as usize] = slot;
        }
        Some(msg)
    }

    /// Pops the live message with the smallest `(delivery_time, id)` key
    /// from the delivery queue — amortized O(log n).  The message stays in
    /// the pool (callers deliver it via [`MessagePool::remove`]); its queue
    /// entry is consumed, so each call yields a distinct message.
    pub fn pop_earliest(&mut self) -> Option<MsgId> {
        while let Some(Reverse((_, id))) = self.queue.pop() {
            if self.contains(MsgId(id)) {
                return Some(MsgId(id));
            }
        }
        None
    }

    /// The `(delivery_time, id)` key of the live message
    /// [`MessagePool::pop_earliest`] would yield, without consuming its
    /// queue entry — amortized O(log n) (stale entries for dead ids are
    /// discarded on the way).  The dispatch core uses this to decide
    /// whether the next delivery falls inside the current watermark
    /// (`u64::MAX` on the serial path, the epoch's virtual-time watermark
    /// on the sharded path).
    pub fn peek_earliest(&mut self) -> Option<(u64, MsgId)> {
        while let Some(Reverse((key, id))) = self.queue.peek().copied() {
            if self.contains(MsgId(id)) {
                return Some((key, MsgId(id)));
            }
            self.queue.pop();
        }
        None
    }

    /// The `k`-th live message in ascending id (send) order — O(log n).
    pub fn nth_live(&self, k: usize) -> Option<MsgId> {
        self.live.kth(k).map(|index| MsgId(index as u64))
    }

    /// Iterates over in-flight messages in ascending id (send) order.
    /// Each step costs O(log n); adversarial drivers that scan for a
    /// matching message pay O(matches-scanned · log n) in total.
    pub fn iter(&self) -> impl Iterator<Item = &PendingMessage<M>> + '_ {
        (0..self.len()).map_while(move |k| self.nth_live(k).and_then(|id| self.get(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_core::{ClientId, ProcessId, ServerId};

    #[derive(Debug, Clone)]
    struct M;
    impl crate::message::SimMessage for M {}

    fn pending(id: u64, sent_at: u64, deliver_at: Option<u64>) -> PendingMessage<M> {
        PendingMessage {
            id: MsgId(id),
            src: ProcessId::Client(ClientId(0)),
            dst: ProcessId::Server(ServerId(0)),
            msg: M,
            sent_at,
            parent: None,
            deliver_at,
        }
    }

    #[test]
    fn fenwick_set_clear_select() {
        let mut f = Fenwick::new();
        for _ in 0..10 {
            f.append_zero();
        }
        for i in [2usize, 3, 5, 7] {
            f.set(i);
        }
        assert_eq!(f.count(), 4);
        assert_eq!(f.kth(0), Some(2));
        assert_eq!(f.kth(1), Some(3));
        assert_eq!(f.kth(2), Some(5));
        assert_eq!(f.kth(3), Some(7));
        assert_eq!(f.kth(4), None);
        f.clear(3);
        assert_eq!(f.kth(1), Some(5));
        // Appending after sets keeps partial sums correct.
        f.append_zero();
        f.set(10);
        assert_eq!(f.kth(3), Some(10));
        assert_eq!(f.count(), 4);
    }

    #[test]
    fn insert_remove_and_rank_selection() {
        let mut pool: MessagePool<M> = MessagePool::new();
        for id in 0..5 {
            pool.insert(pending(id, id, None));
        }
        assert_eq!(pool.len(), 5);
        assert!(pool.contains(MsgId(3)));
        // Rank order is id order regardless of slot shuffling.
        let removed = pool.remove(MsgId(1)).unwrap();
        assert_eq!(removed.id, MsgId(1));
        assert_eq!(pool.remove(MsgId(1)).map(|m| m.id), None);
        assert_eq!(pool.nth_live(0), Some(MsgId(0)));
        assert_eq!(pool.nth_live(1), Some(MsgId(2)));
        assert_eq!(pool.nth_live(3), Some(MsgId(4)));
        assert_eq!(pool.nth_live(4), None);
        let ids: Vec<u64> = pool.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![0, 2, 3, 4]);
    }

    #[test]
    fn pop_earliest_orders_by_delivery_time_then_id() {
        let mut pool: MessagePool<M> = MessagePool::new();
        pool.insert(pending(0, 0, Some(30)));
        pool.insert(pending(1, 0, Some(10)));
        pool.insert(pending(2, 0, Some(10)));
        pool.insert(pending(3, 0, Some(20)));
        let a = pool.pop_earliest().unwrap();
        pool.remove(a).unwrap();
        let b = pool.pop_earliest().unwrap();
        pool.remove(b).unwrap();
        let c = pool.pop_earliest().unwrap();
        pool.remove(c).unwrap();
        assert_eq!((a, b, c), (MsgId(1), MsgId(2), MsgId(3)));
    }

    #[test]
    fn pop_earliest_skips_adversarially_removed_messages() {
        let mut pool: MessagePool<M> = MessagePool::new();
        pool.insert(pending(0, 0, Some(5)));
        pool.insert(pending(1, 0, Some(6)));
        pool.remove(MsgId(0)).unwrap(); // delivered via deliver_where
        assert_eq!(pool.pop_earliest(), Some(MsgId(1)));
        pool.remove(MsgId(1)).unwrap();
        assert_eq!(pool.pop_earliest(), None);
        assert!(pool.is_empty());
    }

    #[test]
    #[should_panic]
    fn duplicate_ids_rejected() {
        let mut pool: MessagePool<M> = MessagePool::new();
        pool.insert(pending(4, 0, None));
        pool.insert(pending(4, 1, None));
    }
}
