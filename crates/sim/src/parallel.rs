//! The sharded parallel step loop: the workspace's third execution
//! substrate.
//!
//! [`ParallelSimulation`] partitions the processes of a deployment into
//! **shards** ([`shard_of`]: servers by `ServerId`, clients by `ClientId`)
//! and runs one instance of the workspace's single dispatch core
//! (`engine::DispatchCore` — **the same type** the serial
//! [`crate::Simulation`] wraps) per shard, each on its own worker thread.
//! Every core owns its delivery pool, `(at, TxId)`-keyed invocation heap,
//! [`Scheduler`] instance and [`Trace`], so shard-disjoint deliveries
//! proceed with no synchronization at all.
//!
//! # The deterministic epoch barrier
//!
//! Cross-shard sends never touch another shard's pool directly.  They are
//! buffered in a per-shard outbox and exchanged at an **epoch barrier**:
//!
//! 1. every worker folds the messages routed to it in the previous epoch
//!    into its pool and reports its *next processable virtual time* (the
//!    earliest delivery key, or the next due invocation's time);
//! 2. one leader computes the global watermark `min(reports) +
//!    epoch_width`; if no shard has work and nothing is in transit, the
//!    system is quiescent;
//! 3. every worker drains its sub-queues by the dispatch core's rules
//!    (`DispatchCore::run_epoch`), buffering cross-shard sends.  The
//!    watermark gates *whether
//!    the shard keeps stepping* — it steps while a due invocation or its
//!    earliest pending delivery falls below the watermark — while the
//!    scheduler stays the same unconstrained adversary it is on the
//!    serial engine (a random scheduler may well deliver a message keyed
//!    past the watermark while earlier ones are pending);
//! 4. the leader routes the union of the outboxes in `(deliver_at,
//!    MsgId)` order to the destination shards, together with each
//!    message's [`crate::CausalEnvelope`] so the receiving shard's trace keeps
//!    deriving exact round counts and non-blocking verdicts.
//!
//! Every decision in this cycle — watermark, routing order, per-shard
//! scheduling — is a pure function of per-shard state, so **the observable
//! history is a deterministic function of `(configuration, seeds, shard
//! count)` regardless of how the OS schedules the worker threads**.
//! Message ids are strided (`shard, shard + n, shard + 2n, …`), so id
//! assignment never races either.
//!
//! # Relation to the serial engine
//!
//! There is exactly one step-loop implementation in this workspace:
//! `DispatchCore` makes every invocation-vs-delivery choice, clock
//! advance and effect application for both substrates (see the private
//! `engine` module; `scripts/ci.sh` rejects any second definition of
//! the dispatch primitives).  With one shard there is nothing to
//! exchange: the engine takes an inline fast path (no threads, watermark
//! `u64::MAX`) that *is* the serial engine — a 1-shard
//! `ParallelSimulation` therefore reproduces the serial golden histories
//! **bit-identically**, pinned by the `parallel_determinism` integration
//! test over all 30 golden (protocol × scheduler) combos.  With more
//! shards the interleaving (and therefore each history's timings and
//! observed versions) legitimately differs from the serial engine's, but
//! it is still deterministic, still strictly serializable, and still
//! semantically equal on serial plans — pinned by the multi-shard cases in
//! `runtime_parity`.

use crate::engine::{DispatchCore, QueuedInvocation, Transit};
use crate::fault::{FaultSchedule, FaultState, RestartFn};
use crate::scheduler::Scheduler;
use crate::sim::CommitDrain;
use crate::trace::Trace;
use snow_core::TxRecord;
use snow_core::{ClientId, History, Process, ProcessId, TxId, TxSpec};
use snow_obs::{NullSink, ShardEvent, TraceSink};
use std::sync::{Barrier, Mutex};

/// Default virtual-time width of one epoch: how far past the globally
/// earliest event each epoch may drain before the next barrier.
pub const DEFAULT_EPOCH_WIDTH: u64 = 64;

/// The shard hosting process `id` when partitioning into `shards` shards:
/// servers by `ServerId`, clients by `ClientId`, both round-robin.  The
/// paper's protocols are per-object/per-server state machines, so this
/// partition preserves their semantics; co-locating a client with the
/// servers it talks to most is purely a performance knob.
pub fn shard_of(id: ProcessId, shards: usize) -> usize {
    match id {
        ProcessId::Server(s) => s.0 as usize % shards,
        ProcessId::Client(c) => c.0 as usize % shards,
    }
}

/// The scheduler seed shard `shard` should derive from a deployment's base
/// seed — the one rule every parallel harness must share: **shard 0 keeps
/// the base seed** (the 1-shard golden-parity proof depends on it), the
/// rest mix their index in.  Used by `snow_protocols::build_cluster_parallel`
/// and the paired-flood bench.
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    if shard == 0 {
        seed
    } else {
        seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// Shared barrier state of one parallel run.
struct ExchangeState<M> {
    /// Cross-shard messages buffered by the epoch that just ran.
    outbound: Vec<Transit<M>>,
    /// Messages routed to each shard, applied at the top of the next epoch.
    inbound: Vec<Vec<Transit<M>>>,
    /// Per-shard next-processable virtual times.
    reports: Vec<Option<u64>>,
    /// Set by the shard owning a watched transaction once it completes.
    watch_done: bool,
    /// The watermark every worker drains to in the current epoch.
    watermark: u64,
    /// Set by the leader when the run is over.
    done: bool,
    /// The first panic payload caught in any shard's epoch.  A panicking
    /// worker cannot simply unwind out of the loop — the others would
    /// block forever in `Barrier::wait` — so it keeps pacing the barrier
    /// protocol as an idle shard until the leader observes the poison,
    /// declares the run done, and every worker exits together; the driver
    /// then re-raises the payload.
    poisoned: Option<Box<dyn std::any::Any + Send>>,
}

/// A deterministic sharded simulation: the same
/// [`Process`]/[`crate::Effects`] contract as [`crate::Simulation`], executed by
/// one worker thread per shard with cross-shard messages exchanged at
/// deterministic epoch barriers.
///
/// Construction mirrors the serial engine: create with a per-shard
/// scheduler factory, [`ParallelSimulation::add_process`] every process,
/// [`ParallelSimulation::invoke_at`] the plan, then run.  Use shard count 1
/// for a drop-in (bit-identical) replacement of the serial engine, and
/// shard count ≈ the number of physical cores for throughput.
///
/// `O` is the observability sink each shard's core emits virtual-time
/// [`snow_obs::ObsEvent`]s into; the default [`NullSink`] compiles the
/// emission sites away.  Swap sinks with
/// [`ParallelSimulation::with_sinks`] and drain per-shard streams with
/// [`ParallelSimulation::drain_obs_events`].
pub struct ParallelSimulation<P: Process, S, O: TraceSink = NullSink> {
    shards: Vec<DispatchCore<P, S, O>>,
    next_tx: u64,
    epoch_width: u64,
    /// Commits drained from their shard but not yet released globally:
    /// shard clocks advance independently, so a record waits here until
    /// every shard's clock has passed its RESP time (see
    /// [`ParallelSimulation::drain_commits`]).
    holdback: Vec<TxRecord>,
}

impl<P, S> ParallelSimulation<P, S>
where
    P: Process,
    S: Scheduler<P::Msg>,
{
    /// Creates an empty simulation over `shards` shards (unobserved: the
    /// default [`NullSink`]).  `make_scheduler` builds each shard's
    /// scheduler from its index; give shard 0 the base seed (and derive
    /// the rest) so a 1-shard run reproduces the serial engine's schedules
    /// exactly.
    ///
    /// # Panics
    /// Panics if `shards` is 0.
    pub fn new(shards: usize, mut make_scheduler: impl FnMut(usize) -> S) -> Self {
        assert!(shards > 0, "a simulation needs at least one shard");
        ParallelSimulation {
            shards: (0..shards)
                .map(|i| DispatchCore::new(i, shards as u64, make_scheduler(i)))
                .collect(),
            next_tx: 0,
            epoch_width: DEFAULT_EPOCH_WIDTH,
            holdback: Vec::new(),
        }
    }
}

impl<P, S, O> ParallelSimulation<P, S, O>
where
    P: Process,
    S: Scheduler<P::Msg>,
    O: TraceSink,
{
    /// Rebuilds the simulation around per-shard observability sinks (type
    /// changing: each core re-monomorphizes its emission sites for `O2`).
    /// `make_sink` builds shard `i`'s sink.  Set sinks before running.
    pub fn with_sinks<O2: TraceSink>(
        self,
        mut make_sink: impl FnMut(usize) -> O2,
    ) -> ParallelSimulation<P, S, O2> {
        ParallelSimulation {
            shards: self
                .shards
                .into_iter()
                .enumerate()
                .map(|(i, shard)| shard.with_sink(make_sink(i)))
                .collect(),
            next_tx: self.next_tx,
            epoch_width: self.epoch_width,
            holdback: self.holdback,
        }
    }

    /// Yields and clears every shard's observability events, concatenated
    /// in shard order and tagged with the emitting shard — virtual-time
    /// stamps only, a pure function of `(configuration, seeds, shards)`.
    /// With one shard the stream is byte-identical to the serial engine's
    /// [`crate::Simulation::drain_obs_events`].
    pub fn drain_obs_events(&mut self) -> Vec<ShardEvent> {
        let mut events = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            events.extend(
                shard
                    .drain_events()
                    .into_iter()
                    .map(|event| ShardEvent { shard: i as u32, event }),
            );
        }
        events
    }

    /// Attaches a [`FaultSchedule`] to the run (builder style; set it
    /// before running).  Every shard carries its own copy of the schedule
    /// plus a restart factory from `make_restart` (required to be `Some`
    /// for any shard when the schedule contains crash windows).  Fault
    /// decisions are pure per-message functions — send-side faults decided
    /// on the sending shard, crash windows on the destination shard — so
    /// the shards need no coordination, the epoch barrier is unaffected,
    /// and a faulty history stays a pure function of `(configuration,
    /// seeds, shard count, fault schedule)`; with one shard it is
    /// byte-identical to the serial engine's.
    pub fn with_faults(
        mut self,
        schedule: FaultSchedule,
        mut make_restart: impl FnMut(usize) -> Option<RestartFn<P>>,
    ) -> Self {
        for i in 0..self.shards.len() {
            self.shards[i].faults = Some(FaultState::new(schedule.clone(), make_restart(i)));
        }
        self
    }

    /// Overrides the per-shard safety cap on steps (the serial engine's
    /// `with_max_steps`, applied to each shard independently).
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        for shard in &mut self.shards {
            shard.max_steps = max_steps;
        }
        self
    }

    /// Bounds every shard's trace to a sliding window of `capacity` recent
    /// actions (see [`Trace::with_action_capacity`]); aggregates — and
    /// therefore [`ParallelSimulation::history`] — are unaffected.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        for shard in &mut self.shards {
            assert!(
                shard.trace.is_empty(),
                "set the trace capacity before running the simulation"
            );
            shard.trace = Trace::with_action_capacity(capacity);
        }
        self
    }

    /// Overrides the epoch's virtual-time width ([`DEFAULT_EPOCH_WIDTH`]):
    /// larger epochs mean fewer barriers but coarser cross-shard
    /// interleaving.  Any width ≥ 1 is deterministic.  The width paces a
    /// shard by its *earliest pending* event, not by which events the
    /// scheduler chooses: time-keyed schedulers (FIFO, latency) therefore
    /// drain ≈ one width of virtual time per epoch, while a random
    /// scheduler — an unconstrained adversary, as on the serial engine —
    /// may deliver arbitrarily late-keyed messages within an epoch as
    /// long as earlier ones remain pending.
    ///
    /// # Panics
    /// Panics if `width` is 0.
    pub fn with_epoch_width(mut self, width: u64) -> Self {
        assert!(width > 0, "epoch width must be at least 1 tick");
        self.epoch_width = width;
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Registers a process on its [`shard_of`] shard.  Panics if a process
    /// with the same id exists.
    pub fn add_process(&mut self, process: P) {
        let id = process.id();
        let shard = shard_of(id, self.shards.len());
        self.shards[shard].add_process(process);
    }

    /// Schedules `spec` to be invoked by `client` at virtual time `at` on
    /// the client's shard.  Transaction ids are assigned globally in call
    /// order, exactly like the serial engine's.
    pub fn invoke_at(&mut self, at: u64, client: ClientId, spec: TxSpec) -> TxId {
        let tx = TxId(self.next_tx);
        self.next_tx += 1;
        let shard = shard_of(ProcessId::Client(client), self.shards.len());
        self.shards[shard]
            .invocations
            .push(QueuedInvocation { at, tx, client, spec });
        tx
    }

    /// The maximum virtual time reached by any shard.
    pub fn now(&self) -> u64 {
        self.shards.iter().map(|s| s.now).max().unwrap_or(0)
    }

    /// Number of messages currently in flight across all shards.
    pub fn pending_count(&self) -> usize {
        self.shards.iter().map(|s| s.pool.len()).sum()
    }

    /// True if transaction `tx` has completed.
    pub fn is_complete(&self, tx: TxId) -> bool {
        self.shards.iter().any(|s| s.is_complete(tx))
    }

    /// True if no shard has anything left to do.
    pub fn is_quiescent(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.pool.is_empty() && s.invocations.is_empty() && s.outbox.is_empty())
    }

    /// A shard's trace (for assertions in tests/harnesses).
    pub fn trace(&self, shard: usize) -> &Trace {
        &self.shards[shard].trace
    }

    /// Drains the transactions committed since the previous drain across
    /// every shard, in **global** RESP order, retiring each shard's
    /// consumed commit-log prefix — the sharded analogue of
    /// [`crate::Simulation::drain_commits`].
    ///
    /// Shard clocks advance independently, so a freshly drained record is
    /// only *released* once every shard's clock has passed its RESP time:
    /// any future commit on shard `i` is stamped strictly after
    /// `shards[i].now` (the dispatch clock clamp), so every record with
    /// `responded_at ≤ min(shard nows)` is globally final in RESP order.
    /// Later records wait in a holdback buffer for a later drain; a
    /// quiescent system releases everything.  The drain's `inv_floor`
    /// accounts for held-back records as well as in-flight and
    /// not-yet-dispatched invocations on every shard.
    pub fn drain_commits(&mut self) -> CommitDrain {
        for i in 0..self.shards.len() {
            let records = {
                let shard = &self.shards[i];
                shard.new_commits(|tx| {
                    self.shards.iter().map(|s| s.trace.c2c_count(tx)).sum()
                })
            };
            self.shards[i].retire_drained_commits();
            self.holdback.extend(records);
        }
        self.holdback
            .sort_by_key(|r| (r.responded_at.unwrap_or(u64::MAX), r.tx_id));
        let released = if self.is_quiescent() {
            self.holdback.len()
        } else {
            let horizon = self.shards.iter().map(|s| s.now).min().unwrap_or(0);
            self.holdback
                .partition_point(|r| r.responded_at.unwrap_or(u64::MAX) <= horizon)
        };
        let records: Vec<TxRecord> = self.holdback.drain(..released).collect();
        let inv_floor = self
            .shards
            .iter()
            .map(|s| s.inv_floor())
            .chain(self.holdback.iter().map(|r| r.invoked_at))
            .min()
            .unwrap_or(0);
        CommitDrain { records, inv_floor }
    }

    fn total_steps(&self) -> u64 {
        self.shards.iter().map(|s| s.steps).sum()
    }
}

impl<P, S, O> ParallelSimulation<P, S, O>
where
    P: Process + Send,
    P::Msg: Send,
    S: Scheduler<P::Msg> + Send,
    O: TraceSink + Send,
{
    /// Runs until no work remains anywhere (or a shard hits its step cap).
    /// Returns the number of steps executed across all shards.
    pub fn run_until_quiescent(&mut self) -> u64 {
        let steps = self.run(&[]);
        self.retire_faulted();
        steps
    }

    /// Runs until transaction `tx` completes (or the system goes
    /// quiescent).  Returns `true` if the transaction completed — which
    /// under a fault schedule includes completing as `Aborted`.
    pub fn run_until_complete(&mut self, tx: TxId) -> bool {
        self.run(&[tx]);
        self.retire_faulted();
        self.is_complete(tx)
    }

    /// Runs until **any** transaction in `watch` completes (or the system
    /// goes quiescent).  Returns the first completed transaction in `watch`
    /// order.  The open-loop driver's primitive (see
    /// [`crate::Simulation::run_until_any_complete`]); an empty `watch`
    /// returns `None` without running.
    pub fn run_until_any_complete(&mut self, watch: &[TxId]) -> Option<TxId> {
        if watch.is_empty() {
            return None;
        }
        self.run(watch);
        self.retire_faulted();
        watch.iter().copied().find(|&tx| self.is_complete(tx))
    }

    /// Fault-engine retirement at quiescence: asks every shard to retire
    /// its orphaned transactions (a per-core no-op unless that shard both
    /// carries a fault schedule and has nothing left to do — a run that
    /// stopped early because a watched transaction completed retires
    /// nothing).  The decision itself lives in the dispatch core.
    fn retire_faulted(&mut self) {
        if !self.is_quiescent() {
            return;
        }
        for shard in &mut self.shards {
            shard.abort_orphans();
        }
    }

    /// The epoch-barrier driver (see the module docs for the cycle).  An
    /// empty `watch` means "run to quiescence"; otherwise the run stops at
    /// the epoch boundary after any watched transaction completes.
    fn run(&mut self, watch: &[TxId]) -> u64 {
        let start = self.total_steps();
        if self.shards.len() == 1 {
            // Inline fast path: one shard is the serial engine — no
            // threads, no exchange, watermark wide open.
            self.shards[0].run_epoch(u64::MAX, watch);
            return self.total_steps() - start;
        }
        let shard_count = self.shards.len();
        let width = self.epoch_width;
        let state = Mutex::new(ExchangeState {
            outbound: Vec::new(),
            inbound: (0..shard_count).map(|_| Vec::new()).collect(),
            reports: vec![None; shard_count],
            watch_done: false,
            watermark: 0,
            done: false,
            poisoned: None,
        });
        let barrier = Barrier::new(shard_count);
        std::thread::scope(|scope| {
            for shard in &mut self.shards {
                scope.spawn(|| worker(shard, &state, &barrier, shard_count, width, watch));
            }
        });
        // Re-raise the first panic any shard's epoch produced (e.g. the
        // max_steps livelock assert), now that every worker has exited the
        // barrier protocol cleanly.
        if let Some(payload) = state.into_inner().expect("exchange lock").poisoned {
            std::panic::resume_unwind(payload);
        }
        self.total_steps() - start
    }

    /// Assembles the [`History`] of the run so far: per-transaction records
    /// from the invoking client's shard, enriched with that shard's trace
    /// aggregates (rounds, read instrumentation) and the cross-shard sum of
    /// C2C sends.  With one shard this is byte-for-byte the serial
    /// engine's [`crate::Simulation::history`].
    pub fn history(&self) -> History {
        let mut history = History::new();
        for shard in &self.shards {
            shard.collect_records(&mut history, |tx| {
                self.shards.iter().map(|s| s.trace.c2c_count(tx)).sum()
            });
        }
        history.records.sort_by_key(|r| (r.invoked_at, r.tx_id));
        history
    }
}

/// One worker's epoch cycle.  Four `Barrier::wait`s per epoch, bracketing
/// the two leader-only phases:
///
/// 1. every worker applies its inbound messages and reports its next
///    processable time; *wait*; the leader computes the watermark or
///    declares the run over; *wait*;
/// 2. every worker reads the watermark (or breaks) and drains its epoch;
/// 3. every worker pushes its outbox; *wait*; the leader routes the union
///    in `(deliver_at, MsgId)` order to the destination shards; *wait*
///    (so no worker starts the next epoch's inbound take mid-routing).
fn worker<P, S, O>(
    shard: &mut DispatchCore<P, S, O>,
    state: &Mutex<ExchangeState<P::Msg>>,
    barrier: &Barrier,
    shard_count: usize,
    width: u64,
    watch: &[TxId],
) where
    P: Process,
    S: Scheduler<P::Msg>,
    O: TraceSink,
{
    // Epoch ordinal on this shard, for the observability sink only.
    let mut epoch = 0u64;
    // True once this shard's epoch panicked: the shard may be mid-mutation,
    // so the worker stops touching it and paces the barrier protocol as an
    // idle shard (reporting no work) until the leader declares the run
    // done — unwinding out of the loop instead would strand the other
    // workers in `Barrier::wait` forever.
    let mut dead = false;
    loop {
        // Apply the messages routed to this shard, then report.
        let inbound = {
            let mut st = state.lock().expect("exchange lock");
            std::mem::take(&mut st.inbound[shard.index])
        };
        if !dead {
            for transit in inbound {
                shard.accept(transit);
            }
        }
        {
            let mut st = state.lock().expect("exchange lock");
            st.reports[shard.index] = if dead { None } else { shard.next_processable() };
            if !dead && watch.iter().any(|&tx| shard.is_complete(tx)) {
                st.watch_done = true;
            }
        }
        if barrier.wait().is_leader() {
            let mut st = state.lock().expect("exchange lock");
            let global = st.reports.iter().filter_map(|t| *t).min();
            st.done = global.is_none() || st.watch_done || st.poisoned.is_some();
            if let Some(earliest) = global {
                st.watermark = earliest.saturating_add(width);
            }
        }
        barrier.wait();
        let watermark = {
            let st = state.lock().expect("exchange lock");
            if st.done {
                break;
            }
            st.watermark
        };
        // Drain this epoch, then hand the outbox to the router.
        if !dead {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shard.run_epoch(watermark, watch)
            })) {
                Ok(steps) => {
                    shard.note_epoch(epoch, watermark, steps);
                    epoch += 1;
                    let mut st = state.lock().expect("exchange lock");
                    st.outbound.append(&mut shard.outbox);
                }
                Err(payload) => {
                    dead = true;
                    let mut st = state.lock().expect("exchange lock");
                    st.poisoned.get_or_insert(payload);
                }
            }
        }
        if barrier.wait().is_leader() {
            let mut st = state.lock().expect("exchange lock");
            let mut outbound = std::mem::take(&mut st.outbound);
            outbound.sort_by_key(|t| (t.key(), t.msg.id.0));
            for transit in outbound {
                let dest = shard_of(transit.msg.dst, shard_count);
                st.inbound[dest].push(transit);
            }
        }
        barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FifoScheduler, LatencyScheduler, RandomScheduler};
    use crate::trace::ActionKind;
    use crate::Simulation;
    use std::collections::BTreeMap;
    use snow_core::{
        Effects, Key, MsgInfo, ObjectId, ObjectRead, ProtocolMessage, ReadOutcome, ServerId,
        TxOutcome, Value,
    };

    /// A toy read protocol spanning shards: the client sends one request
    /// per object to the server hosting it (`ServerId = ObjectId`), each
    /// server replies, the client responds when all replies are in.
    #[derive(Debug, Clone)]
    enum ToyMsg {
        Req { tx: TxId, object: ObjectId },
        Resp { tx: TxId, object: ObjectId },
    }

    impl ProtocolMessage for ToyMsg {
        fn info(&self) -> MsgInfo {
            match self {
                ToyMsg::Req { tx, object } => MsgInfo::read_request(*tx, Some(*object)),
                ToyMsg::Resp { tx, object } => MsgInfo::read_response(*tx, Some(*object), 1),
            }
        }
    }

    enum ToyNode {
        Client {
            id: ClientId,
            // Keyed by transaction so the engine tests may overlap
            // invocations from one client (the real protocols rely on the
            // driver for one-outstanding well-formedness; the toy doesn't).
            outstanding: BTreeMap<TxId, (usize, Vec<ObjectRead>)>,
        },
        Server {
            id: ServerId,
        },
    }

    impl Process for ToyNode {
        type Msg = ToyMsg;

        fn id(&self) -> ProcessId {
            match self {
                ToyNode::Client { id, .. } => ProcessId::Client(*id),
                ToyNode::Server { id } => ProcessId::Server(*id),
            }
        }

        fn on_invoke(&mut self, tx_id: TxId, spec: TxSpec, effects: &mut Effects<ToyMsg>) {
            let ToyNode::Client { outstanding, .. } = self else {
                panic!("server invoked")
            };
            let objects = spec.objects();
            outstanding.insert(tx_id, (objects.len(), Vec::new()));
            for o in objects {
                effects.send(
                    ProcessId::Server(ServerId(o.0)),
                    ToyMsg::Req { tx: tx_id, object: o },
                );
            }
        }

        fn on_message(&mut self, from: ProcessId, msg: ToyMsg, effects: &mut Effects<ToyMsg>) {
            match (self, msg) {
                (ToyNode::Server { .. }, ToyMsg::Req { tx, object }) => {
                    effects.send(from, ToyMsg::Resp { tx, object });
                }
                (ToyNode::Client { outstanding, .. }, ToyMsg::Resp { tx, object }) => {
                    if let Some((want, got)) = outstanding.get_mut(&tx) {
                        got.push(ObjectRead {
                            object,
                            key: Key::initial(),
                            value: Value::INITIAL,
                        });
                        if got.len() == *want {
                            effects.respond(
                                tx,
                                TxOutcome::Read(ReadOutcome { reads: got.clone(), tag: None }),
                            );
                            outstanding.remove(&tx);
                        }
                    }
                }
                _ => panic!("unexpected message"),
            }
        }
    }

    fn deploy<S: Scheduler<ToyMsg>>(
        shards: usize,
        clients: u32,
        servers: u32,
        make: impl FnMut(usize) -> S,
    ) -> ParallelSimulation<ToyNode, S> {
        let mut sim = ParallelSimulation::new(shards, make);
        for c in 0..clients {
            sim.add_process(ToyNode::Client { id: ClientId(c), outstanding: BTreeMap::new() });
        }
        for s in 0..servers {
            sim.add_process(ToyNode::Server { id: ServerId(s) });
        }
        sim
    }

    fn plan(sim: &mut ParallelSimulation<ToyNode, impl Scheduler<ToyMsg>>, clients: u32) -> Vec<TxId> {
        let mut txs = Vec::new();
        for round in 0..6u64 {
            for c in 0..clients {
                // Every read spans several servers, so shards must talk.
                txs.push(sim.invoke_at(
                    round * 10,
                    ClientId(c),
                    TxSpec::read(vec![ObjectId(c), ObjectId((c + 1) % 4), ObjectId((c + 2) % 4)]),
                ));
            }
        }
        txs
    }

    #[test]
    fn one_shard_matches_the_serial_engine_bit_for_bit() {
        let run_serial = |seed: u64| {
            let mut sim = Simulation::new(RandomScheduler::new(seed));
            for c in 0..4 {
                sim.add_process(ToyNode::Client { id: ClientId(c), outstanding: BTreeMap::new() });
            }
            for s in 0..4 {
                sim.add_process(ToyNode::Server { id: ServerId(s) });
            }
            let mut txs = Vec::new();
            for round in 0..6u64 {
                for c in 0..4u32 {
                    txs.push(sim.invoke_at(
                        round * 10,
                        ClientId(c),
                        TxSpec::read(vec![
                            ObjectId(c),
                            ObjectId((c + 1) % 4),
                            ObjectId((c + 2) % 4),
                        ]),
                    ));
                }
            }
            let steps = sim.run_until_quiescent();
            (format!("{:?}", sim.history()), sim.now(), steps)
        };
        for seed in [3u64, 17, 99] {
            let mut par = deploy(1, 4, 4, |_| RandomScheduler::new(seed));
            plan(&mut par, 4);
            let steps = par.run_until_quiescent();
            let (serial_history, serial_now, serial_steps) = run_serial(seed);
            assert_eq!(format!("{:?}", par.history()), serial_history, "seed {seed}");
            assert_eq!(par.now(), serial_now, "seed {seed}");
            assert_eq!(steps, serial_steps, "seed {seed}");
        }
    }

    #[test]
    fn multi_shard_runs_are_deterministic_per_seed_and_shard_count() {
        let run = |shards: usize, seed: u64| {
            let mut sim = deploy(shards, 4, 4, |i| {
                RandomScheduler::new(shard_seed(seed, i))
            });
            let txs = plan(&mut sim, 4);
            sim.run_until_quiescent();
            for tx in &txs {
                assert!(sim.is_complete(*tx), "{shards} shards, seed {seed}: {tx}");
            }
            assert!(sim.is_quiescent());
            format!("{:?}", sim.history())
        };
        for shards in [2usize, 3, 4] {
            assert_eq!(run(shards, 7), run(shards, 7), "{shards} shards not reproducible");
        }
        // Different shard counts legitimately interleave differently…
        assert_ne!(run(1, 7), run(4, 7));
    }

    #[test]
    fn cross_shard_instrumentation_matches_the_single_shard_semantics() {
        // Every transaction is one causal round and three non-blocking
        // single-version reads, no matter how the processes are sharded.
        for shards in [1usize, 2, 4] {
            let mut sim = deploy(shards, 4, 4, |i| LatencyScheduler::new(5 + i as u64, 1, 16));
            let txs = plan(&mut sim, 4);
            sim.run_until_quiescent();
            let history = sim.history();
            assert_eq!(history.len(), txs.len());
            for rec in &history.records {
                assert!(rec.is_complete(), "{shards} shards: {}", rec.tx_id);
                assert_eq!(rec.rounds, 1, "{shards} shards: {}", rec.tx_id);
                assert_eq!(rec.reads.len(), 3, "{shards} shards: {}", rec.tx_id);
                assert!(
                    rec.all_reads_nonblocking(),
                    "{shards} shards: {}",
                    rec.tx_id
                );
                assert_eq!(rec.c2c_messages, 0);
            }
        }
    }

    #[test]
    fn bounded_multi_shard_traces_preserve_histories_and_stay_small() {
        let run = |capacity: Option<usize>| {
            let mut sim = deploy(4, 4, 4, |i| LatencyScheduler::new(shard_seed(9, i), 1, 16));
            if let Some(cap) = capacity {
                sim = sim.with_trace_capacity(cap);
            }
            plan(&mut sim, 4);
            sim.run_until_quiescent();
            let metas: Vec<usize> =
                (0..sim.num_shards()).map(|s| sim.trace(s).causal_meta_len()).collect();
            (format!("{:?}", sim.history()), metas)
        };
        let (unbounded_history, unbounded_metas) = run(None);
        let (bounded_history, bounded_metas) = run(Some(32));
        // Same seeds, same schedule, same derived history — aggregates do
        // not depend on the retained window or the pruned metadata.
        assert_eq!(bounded_history, unbounded_history);
        // Every transaction responded and every cross-shard/foreign meta
        // was pruned (at export, delivery, or RESP): nothing remains.
        assert_eq!(bounded_metas, vec![0; 4], "bounded shards must drain their meta tables");
        // The unbounded engine keeps one meta per send per shard.
        assert!(unbounded_metas.iter().sum::<usize>() > 100);
    }

    #[test]
    fn run_until_complete_stops_at_the_watched_transaction() {
        let mut sim = deploy(2, 2, 4, |_| FifoScheduler::new());
        let first = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(1)]));
        let later = sim.invoke_at(50_000, ClientId(1), TxSpec::read(vec![ObjectId(0)]));
        assert!(sim.run_until_complete(first));
        assert!(sim.is_complete(first));
        assert!(!sim.is_complete(later));
        assert!(sim.run_until_complete(later));
    }

    /// Interleaving drains with multi-shard runs yields exactly the
    /// completed records of the final history, in global RESP order, with
    /// `inv_floor` watermarks that no later-released record undercuts.
    #[test]
    fn drain_commits_releases_in_global_resp_order_across_shards() {
        let mut sim = deploy(4, 4, 4, |i| LatencyScheduler::new(shard_seed(21, i), 1, 16));
        let txs = plan(&mut sim, 4);
        let mut drained = Vec::new();
        let mut floor = 0u64;
        // Drain after every completion wave, exercising the holdback path
        // while shard clocks are genuinely skewed.
        loop {
            let remaining: Vec<TxId> = txs
                .iter()
                .copied()
                .filter(|&tx| !sim.is_complete(tx))
                .collect();
            if remaining.is_empty() {
                break;
            }
            sim.run_until_any_complete(&remaining);
            let drain = sim.drain_commits();
            for rec in &drain.records {
                assert!(
                    rec.invoked_at >= floor,
                    "record invoked at {} below the promised floor {floor}",
                    rec.invoked_at
                );
            }
            assert!(drain.inv_floor >= floor, "inv_floor regressed");
            floor = drain.inv_floor;
            drained.extend(drain.records);
        }
        sim.run_until_quiescent();
        drained.extend(sim.drain_commits().records);
        assert!(drained
            .windows(2)
            .all(|w| (w[0].responded_at, w[0].tx_id) <= (w[1].responded_at, w[1].tx_id)));
        let mut expected: Vec<_> = sim.history().records;
        expected.sort_by_key(|r| (r.responded_at, r.tx_id));
        assert_eq!(format!("{drained:?}"), format!("{expected:?}"));
    }

    #[test]
    fn message_ids_are_strided_per_shard() {
        let mut sim = deploy(4, 4, 4, |_| FifoScheduler::new());
        plan(&mut sim, 4);
        sim.run_until_quiescent();
        // Shard i only ever assigns ids ≡ i (mod 4): every send recorded in
        // its trace carries such an id.
        for (i, shard) in sim.shards.iter().enumerate() {
            for action in shard.trace.actions() {
                if let ActionKind::Send { msg, .. } = &action.kind {
                    assert_eq!(msg.0 as usize % 4, i, "shard {i} id {msg}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeded 50 steps")]
    fn one_shard_panicking_propagates_instead_of_deadlocking_the_barrier() {
        // Shard 0 blows its step cap mid-epoch while shard 1 is already
        // idle at the barrier.  The panic must surface from
        // run_until_quiescent (via the poison protocol), not strand the
        // other worker in Barrier::wait forever.
        let mut sim =
            deploy(2, 2, 2, |_| FifoScheduler::new()).with_max_steps(50);
        for _ in 0..40 {
            sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        }
        sim.invoke_at(0, ClientId(1), TxSpec::read(vec![ObjectId(1)]));
        sim.run_until_quiescent();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ParallelSimulation::<ToyNode, FifoScheduler>::new(0, |_| FifoScheduler::new());
    }

    #[test]
    #[should_panic]
    fn duplicate_process_ids_are_rejected() {
        let mut sim = deploy(2, 1, 1, |_| FifoScheduler::new());
        sim.add_process(ToyNode::Server { id: ServerId(0) });
    }
}
