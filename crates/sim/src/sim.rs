//! The simulation engine: processes + pending messages + scheduler + trace.

use crate::message::{MsgId, PendingMessage, SimMessage};
use crate::process::{Effects, Process};
use crate::scheduler::Scheduler;
use crate::trace::{ActionKind, Trace};
use snow_core::{ClientId, History, ProcessId, ReadResult, TxId, TxKind, TxRecord, TxSpec};
use std::collections::BTreeMap;

/// A planned invocation: at simulation time `at`, client `client` invokes
/// `spec` (well-formedness — one outstanding transaction per client — is the
/// harness's responsibility, checked by `snow-checker`).
#[derive(Debug, Clone)]
pub struct InvocationPlan {
    /// Simulation time at which the INV event occurs.
    pub at: u64,
    /// The invoking client.
    pub client: ClientId,
    /// The transaction body.
    pub spec: TxSpec,
}

/// What a single simulation step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// An invocation was dispatched to a client.
    Invoked(TxId),
    /// A message was delivered.
    Delivered(MsgId),
    /// Nothing left to do: no pending messages and no future invocations.
    Quiescent,
}

/// A deterministic simulation of a set of processes exchanging messages over
/// reliable asynchronous channels.
pub struct Simulation<P: Process, S> {
    processes: BTreeMap<ProcessId, P>,
    pending: Vec<PendingMessage<P::Msg>>,
    invocations: Vec<(u64, TxId, ClientId, TxSpec)>,
    scheduler: S,
    trace: Trace,
    records: BTreeMap<TxId, TxRecord>,
    now: u64,
    next_msg: u64,
    next_tx: u64,
    max_steps: u64,
    steps: u64,
}

impl<P, S> Simulation<P, S>
where
    P: Process,
    S: Scheduler<P::Msg>,
{
    /// Creates an empty simulation driven by `scheduler`.
    pub fn new(scheduler: S) -> Self {
        Simulation {
            processes: BTreeMap::new(),
            pending: Vec::new(),
            invocations: Vec::new(),
            scheduler,
            trace: Trace::new(),
            records: BTreeMap::new(),
            now: 0,
            next_msg: 0,
            next_tx: 0,
            max_steps: 1_000_000,
            steps: 0,
        }
    }

    /// Overrides the safety cap on the number of steps a run may take.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Registers a process.  Panics if a process with the same id exists.
    pub fn add_process(&mut self, process: P) {
        let id = process.id();
        let prev = self.processes.insert(id, process);
        assert!(prev.is_none(), "duplicate process id {id}");
    }

    /// Schedules `spec` to be invoked by `client` at simulation time `at`.
    /// Returns the transaction id the invocation will carry.
    pub fn invoke_at(&mut self, at: u64, client: ClientId, spec: TxSpec) -> TxId {
        let tx = TxId(self.next_tx);
        self.next_tx += 1;
        self.invocations.push((at, tx, client, spec));
        // Keep invocations sorted by (time, tx id) so dispatch order is
        // deterministic.
        self.invocations.sort_by_key(|(t, tx, _, _)| (*t, *tx));
        tx
    }

    /// Schedules `spec` to be invoked immediately (at the current time).
    pub fn invoke_now(&mut self, client: ClientId, spec: TxSpec) -> TxId {
        self.invoke_at(self.now, client, spec)
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of messages currently in flight.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// A read-only view of the in-flight messages.
    pub fn pending(&self) -> &[PendingMessage<P::Msg>] {
        &self.pending
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Access to a registered process (for assertions in tests/harnesses).
    pub fn process(&self, id: ProcessId) -> Option<&P> {
        self.processes.get(&id)
    }

    /// True if transaction `tx` has completed.
    pub fn is_complete(&self, tx: TxId) -> bool {
        self.records.get(&tx).map(|r| r.is_complete()).unwrap_or(false)
    }

    /// True if there is nothing left to do.
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty() && self.invocations.is_empty()
    }

    /// Executes one step: dispatches the earliest due invocation if any,
    /// otherwise delivers the message chosen by the scheduler.
    pub fn step(&mut self) -> StepOutcome {
        self.steps += 1;
        assert!(
            self.steps <= self.max_steps,
            "simulation exceeded {} steps; likely livelock",
            self.max_steps
        );

        // Dispatch an invocation if one is due at or before `now`, or if
        // there are no pending messages (time jumps forward to the next
        // invocation).
        let due = self
            .invocations
            .first()
            .map(|(t, _, _, _)| *t <= self.now || self.pending.is_empty())
            .unwrap_or(false);
        if due {
            let (at, tx, client, spec) = self.invocations.remove(0);
            self.now = self.now.max(at) + 1;
            self.dispatch_invocation(tx, client, spec);
            return StepOutcome::Invoked(tx);
        }

        match self.scheduler.choose(&self.pending, self.now) {
            Some(idx) => {
                let msg = self.pending.remove(idx);
                self.now = self.now.max(msg.deliver_at.unwrap_or(self.now)) + 1;
                let id = msg.id;
                self.deliver(msg);
                StepOutcome::Delivered(id)
            }
            None => StepOutcome::Quiescent,
        }
    }

    /// Runs until no work remains (or the step cap is hit).  Returns the
    /// number of steps executed.
    pub fn run_until_quiescent(&mut self) -> u64 {
        let start = self.steps;
        while !self.is_quiescent() {
            if self.step() == StepOutcome::Quiescent {
                break;
            }
        }
        self.steps - start
    }

    /// Runs until transaction `tx` completes (or the system goes quiescent).
    /// Returns `true` if the transaction completed.
    pub fn run_until_complete(&mut self, tx: TxId) -> bool {
        while !self.is_complete(tx) {
            if self.is_quiescent() || self.step() == StepOutcome::Quiescent {
                break;
            }
        }
        self.is_complete(tx)
    }

    /// Manual (adversarial) driving: delivers the first pending message
    /// matching `pred`, bypassing the scheduler.  Returns the delivered
    /// message id, or `None` if nothing matched.
    pub fn deliver_where<F>(&mut self, pred: F) -> Option<MsgId>
    where
        F: Fn(&PendingMessage<P::Msg>) -> bool,
    {
        let idx = self.pending.iter().position(pred)?;
        let msg = self.pending.remove(idx);
        self.now += 1;
        let id = msg.id;
        self.deliver(msg);
        Some(id)
    }

    /// Manual driving: dispatches the next scheduled invocation for `client`
    /// immediately, regardless of its planned time.  Returns the transaction
    /// id, or `None` if no invocation is queued for that client.
    pub fn force_invoke(&mut self, client: ClientId) -> Option<TxId> {
        let idx = self.invocations.iter().position(|(_, _, c, _)| *c == client)?;
        let (_, tx, client, spec) = self.invocations.remove(idx);
        self.now += 1;
        self.dispatch_invocation(tx, client, spec);
        Some(tx)
    }

    fn dispatch_invocation(&mut self, tx: TxId, client: ClientId, spec: TxSpec) {
        let pid = ProcessId::Client(client);
        self.trace.record(
            self.now,
            pid,
            ActionKind::Invoke {
                tx,
                kind: spec.kind(),
            },
        );
        self.records
            .insert(tx, TxRecord::invoked(tx, client, spec.clone(), self.now));
        let mut effects = Effects::new(self.now);
        let process = self
            .processes
            .get_mut(&pid)
            .unwrap_or_else(|| panic!("invocation for unknown process {pid}"));
        process.on_invoke(tx, spec, &mut effects);
        self.apply_effects(pid, None, effects);
    }

    fn deliver(&mut self, msg: PendingMessage<P::Msg>) {
        let info = msg.msg.info();
        self.trace.record(
            self.now,
            msg.dst,
            ActionKind::Recv {
                msg: msg.id,
                from: msg.src,
                info,
            },
        );
        let mut effects = Effects::new(self.now);
        let process = self
            .processes
            .get_mut(&msg.dst)
            .unwrap_or_else(|| panic!("message to unknown process {}", msg.dst));
        process.on_message(msg.src, msg.msg, &mut effects);
        self.apply_effects(msg.dst, Some(msg.id), effects);
    }

    fn apply_effects(&mut self, at: ProcessId, parent: Option<MsgId>, effects: Effects<P::Msg>) {
        let (sends, responses) = effects.into_parts();
        for (to, m) in sends {
            let id = MsgId(self.next_msg);
            self.next_msg += 1;
            let info = m.info();
            self.trace.record(
                self.now,
                at,
                ActionKind::Send {
                    msg: id,
                    to,
                    parent,
                    info,
                },
            );
            let deliver_at = self.scheduler.on_send(self.now);
            self.pending.push(PendingMessage {
                id,
                src: at,
                dst: to,
                msg: m,
                sent_at: self.now,
                parent,
                deliver_at,
            });
        }
        for (tx, outcome) in responses {
            self.trace.record(self.now, at, ActionKind::Respond { tx });
            if let Some(rec) = self.records.get_mut(&tx) {
                rec.responded_at = Some(self.now);
                rec.outcome = Some(outcome);
            }
        }
    }

    /// Assembles the [`History`] of the run so far, deriving rounds,
    /// versions-per-read, non-blocking flags and C2C counts from the trace.
    pub fn history(&self) -> History {
        let mut history = History::new();
        for (tx, rec) in &self.records {
            let mut rec = rec.clone();
            let client = ProcessId::Client(rec.client);
            rec.rounds = self.trace.rounds_of(*tx, client);
            rec.c2c_messages = self.trace.c2c_count(*tx);
            if rec.kind() == TxKind::Read {
                rec.reads = self.read_metrics(*tx, client);
            }
            history.push(rec);
        }
        history.records.sort_by_key(|r| (r.invoked_at, r.tx_id));
        history
    }

    /// Derives per-object read instrumentation for a READ transaction from
    /// the trace: which server answered, how many versions the response
    /// carried, and whether the response was sent while handling the read
    /// request itself (non-blocking) or only later, from some other handler
    /// (blocking).
    fn read_metrics(&self, tx: TxId, client: ProcessId) -> Vec<ReadResult> {
        use crate::message::MsgKind;
        let mut out = Vec::new();
        for action in self.trace.actions() {
            // Consider read responses *received by the reading client*.
            let (msg_id, from, info) = match &action.kind {
                ActionKind::Recv { msg, from, info } if action.at == client => (msg, from, info),
                _ => continue,
            };
            if info.kind != MsgKind::ReadResponse || info.tx != Some(tx) {
                continue;
            }
            let object = match info.object {
                Some(o) => o,
                None => continue, // metadata response (e.g. get-tag-arr)
            };
            let server = match from.as_server() {
                Some(s) => s,
                None => continue,
            };
            // Non-blocking iff the response's causal parent is a read request
            // of the same transaction (the server answered within the handler
            // of the request, without waiting for any other input action).
            let nonblocking = match self.trace.parent_of(*msg_id) {
                Some(parent_id) => self
                    .trace
                    .send_of(parent_id)
                    .map(|send| match &send.kind {
                        ActionKind::Send { info: pinfo, .. } => {
                            pinfo.kind == MsgKind::ReadRequest && pinfo.tx == Some(tx)
                        }
                        _ => false,
                    })
                    .unwrap_or(false),
                None => false,
            };
            out.push(ReadResult {
                object,
                server,
                versions_in_response: info.versions.max(1),
                nonblocking,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgInfo, SimMessage};
    use crate::scheduler::{FifoScheduler, LatencyScheduler, RandomScheduler};
    use snow_core::{
        Key, ObjectId, ObjectRead, ReadOutcome, ServerId, TxOutcome, Value,
    };

    /// A toy read protocol: the client sends one request per object, each
    /// server replies with the initial value, the client responds when all
    /// replies are in.
    #[derive(Debug, Clone)]
    enum ToyMsg {
        Req { tx: TxId, object: ObjectId },
        Resp { tx: TxId, object: ObjectId },
    }

    impl SimMessage for ToyMsg {
        fn info(&self) -> MsgInfo {
            match self {
                ToyMsg::Req { tx, object } => MsgInfo::read_request(*tx, Some(*object)),
                ToyMsg::Resp { tx, object } => MsgInfo::read_response(*tx, Some(*object), 1),
            }
        }
    }

    enum ToyNode {
        Client {
            id: ClientId,
            outstanding: Option<(TxId, usize, Vec<ObjectRead>)>,
        },
        Server {
            id: ServerId,
        },
    }

    impl Process for ToyNode {
        type Msg = ToyMsg;

        fn id(&self) -> ProcessId {
            match self {
                ToyNode::Client { id, .. } => ProcessId::Client(*id),
                ToyNode::Server { id } => ProcessId::Server(*id),
            }
        }

        fn on_invoke(&mut self, tx_id: TxId, spec: TxSpec, effects: &mut Effects<ToyMsg>) {
            let ToyNode::Client { outstanding, .. } = self else {
                panic!("server invoked")
            };
            let objects = spec.objects();
            *outstanding = Some((tx_id, objects.len(), Vec::new()));
            for o in objects {
                effects.send(
                    ProcessId::Server(ServerId(o.0)),
                    ToyMsg::Req { tx: tx_id, object: o },
                );
            }
        }

        fn on_message(&mut self, from: ProcessId, msg: ToyMsg, effects: &mut Effects<ToyMsg>) {
            match (self, msg) {
                (ToyNode::Server { .. }, ToyMsg::Req { tx, object }) => {
                    effects.send(from, ToyMsg::Resp { tx, object });
                }
                (ToyNode::Client { outstanding, .. }, ToyMsg::Resp { tx, object }) => {
                    if let Some((cur, want, got)) = outstanding {
                        if *cur == tx {
                            got.push(ObjectRead {
                                object,
                                key: Key::initial(),
                                value: Value::INITIAL,
                            });
                            if got.len() == *want {
                                effects.respond(
                                    tx,
                                    TxOutcome::Read(ReadOutcome {
                                        reads: got.clone(),
                                        tag: None,
                                    }),
                                );
                                *outstanding = None;
                            }
                        }
                    }
                }
                _ => panic!("unexpected message"),
            }
        }
    }

    fn toy_sim<S: Scheduler<ToyMsg>>(scheduler: S) -> Simulation<ToyNode, S> {
        let mut sim = Simulation::new(scheduler);
        sim.add_process(ToyNode::Client {
            id: ClientId(0),
            outstanding: None,
        });
        sim.add_process(ToyNode::Server { id: ServerId(0) });
        sim.add_process(ToyNode::Server { id: ServerId(1) });
        sim
    }

    #[test]
    fn toy_read_completes_under_fifo() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
        assert!(!sim.is_complete(tx));
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
        assert!(sim.is_quiescent());

        let h = sim.history();
        assert_eq!(h.len(), 1);
        let rec = h.get(tx).unwrap();
        assert!(rec.is_complete());
        assert_eq!(rec.rounds, 1);
        assert_eq!(rec.reads.len(), 2);
        assert!(rec.all_reads_nonblocking());
        assert_eq!(rec.max_versions_per_read(), 1);
        assert_eq!(rec.c2c_messages, 0);
    }

    #[test]
    fn toy_read_completes_under_random_and_latency_schedulers() {
        for seed in 0..5u64 {
            let mut sim = toy_sim(RandomScheduler::new(seed));
            let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
            sim.run_until_quiescent();
            assert!(sim.is_complete(tx), "seed {seed}");
        }
        let mut sim = toy_sim(LatencyScheduler::new(3, 1, 10));
        let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
        let rec = sim.history();
        assert!(rec.get(tx).unwrap().latency().unwrap() > 0);
    }

    #[test]
    fn manual_delivery_allows_adversarial_ordering() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
        // Dispatch the invocation only.
        assert_eq!(sim.step(), StepOutcome::Invoked(tx));
        assert_eq!(sim.pending_count(), 2);
        // Deliver the request to s1 before the one to s0.
        let delivered = sim.deliver_where(|p| p.dst == ProcessId::Server(ServerId(1)));
        assert!(delivered.is_some());
        // No match for an already-delivered destination+direction.
        assert!(sim
            .deliver_where(|p| p.dst == ProcessId::Server(ServerId(99)))
            .is_none());
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
    }

    #[test]
    fn force_invoke_dispatches_early() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx = sim.invoke_at(1_000, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        assert_eq!(sim.force_invoke(ClientId(0)), Some(tx));
        assert_eq!(sim.force_invoke(ClientId(0)), None);
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
    }

    #[test]
    fn run_until_complete_stops_at_target() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx1 = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        let tx2 = sim.invoke_at(50, ClientId(0), TxSpec::read(vec![ObjectId(1)]));
        assert!(sim.run_until_complete(tx1));
        assert!(sim.is_complete(tx1));
        assert!(sim.run_until_complete(tx2));
    }

    #[test]
    fn history_sorted_by_invocation_time() {
        let mut sim = toy_sim(FifoScheduler::new());
        let _t2 = sim.invoke_at(10, ClientId(0), TxSpec::read(vec![ObjectId(1)]));
        let t1 = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        sim.run_until_quiescent();
        let h = sim.history();
        assert_eq!(h.records[0].tx_id, t1);
    }

    #[test]
    #[should_panic]
    fn duplicate_process_ids_are_rejected() {
        let mut sim = toy_sim(FifoScheduler::new());
        sim.add_process(ToyNode::Server { id: ServerId(0) });
    }
}
