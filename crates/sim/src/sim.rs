//! The simulation engine: processes + indexed message pool + scheduler +
//! trace.
//!
//! # Event-queue architecture and complexity contract
//!
//! The engine keeps three indexed structures so the step loop does no
//! linear scanning:
//!
//! * in-flight messages live in a [`MessagePool`] — a slot vector with O(1)
//!   swap-remove, a `(delivery_time, MsgId)` binary heap for O(log n)
//!   earliest-delivery pops, and a Fenwick live-index for O(log n) rank
//!   selection in send order (see [`crate::pool`]);
//! * planned invocations live in a [`BinaryHeap`] keyed by `(at, TxId)`, so
//!   scheduling n invocations is O(n log n) total (the old sorted-`Vec`
//!   insert was O(n² log n)) and the next due invocation is an O(1) peek;
//! * the [`Trace`] folds every recorded action into per-transaction indexes
//!   (rounds, C2C counts, read instrumentation, parent links), so
//!   [`Simulation::history`] is a single pass over the transaction records
//!   instead of O(transactions × actions).
//!
//! Per step the engine therefore does O(log n) work plus the process
//! handler's own cost, for any scheduler.  Adversarial driving
//! ([`Simulation::deliver_where`], [`Simulation::force_invoke`]) trades this
//! for expressiveness: it scans in send order (O(matches · log n)) exactly
//! like the historical `Vec`-based engine, which keeps the
//! `snow-impossibility` constructions unchanged.
//!
//! Determinism: a run is a pure function of `(configuration, scheduler
//! seed, invocation plan)`.  The indexed engine reproduces the linear-scan
//! engine's schedules bit-for-bit — verified by the `determinism`
//! integration test against committed golden histories.

use crate::message::{MsgId, PendingMessage, SimMessage};
use crate::pool::MessagePool;
use crate::scheduler::Scheduler;
use crate::trace::{ActionKind, Trace};
use snow_core::{ClientId, Effects, History, Process, ProcessId, TxId, TxKind, TxRecord, TxSpec};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, BTreeMap};

/// A planned invocation: at simulation time `at`, client `client` invokes
/// `spec` (well-formedness — one outstanding transaction per client — is the
/// harness's responsibility, checked by `snow-checker`).
#[derive(Debug, Clone)]
pub struct InvocationPlan {
    /// Simulation time at which the INV event occurs.
    pub at: u64,
    /// The invoking client.
    pub client: ClientId,
    /// The transaction body.
    pub spec: TxSpec,
}

/// A scheduled invocation, ordered by `(at, tx)` for the invocation queue
/// (shared with the sharded engine in [`crate::parallel`]).
#[derive(Debug, Clone)]
pub(crate) struct QueuedInvocation {
    pub(crate) at: u64,
    pub(crate) tx: TxId,
    pub(crate) client: ClientId,
    pub(crate) spec: TxSpec,
}

impl PartialEq for QueuedInvocation {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.tx) == (other.at, other.tx)
    }
}
impl Eq for QueuedInvocation {}
impl PartialOrd for QueuedInvocation {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedInvocation {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (at, tx) on top.
        (other.at, other.tx).cmp(&(self.at, self.tx))
    }
}

// NOTE: the dispatch core below (`step`'s due-invocation/delivery rules,
// `dispatch_invocation`, `deliver`, `apply_effects`) is mirrored by
// `parallel::Shard` — the sharded engine's 1-shard golden bit-parity
// depends on the two staying in lockstep.  Change both or the
// `determinism`/`parallel_determinism` suites fail.

/// What a single simulation step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// An invocation was dispatched to a client.
    Invoked(TxId),
    /// A message was delivered.
    Delivered(MsgId),
    /// Nothing left to do: no pending messages and no future invocations.
    Quiescent,
}

/// A deterministic simulation of a set of processes exchanging messages over
/// reliable asynchronous channels.
pub struct Simulation<P: Process, S> {
    processes: BTreeMap<ProcessId, P>,
    pool: MessagePool<P::Msg>,
    invocations: BinaryHeap<QueuedInvocation>,
    scheduler: S,
    trace: Trace,
    records: BTreeMap<TxId, TxRecord>,
    now: u64,
    next_msg: u64,
    next_tx: u64,
    max_steps: u64,
    steps: u64,
}

impl<P, S> Simulation<P, S>
where
    P: Process,
    S: Scheduler<P::Msg>,
{
    /// Creates an empty simulation driven by `scheduler`.
    pub fn new(scheduler: S) -> Self {
        Simulation {
            processes: BTreeMap::new(),
            pool: MessagePool::new(),
            invocations: BinaryHeap::new(),
            scheduler,
            trace: Trace::new(),
            records: BTreeMap::new(),
            now: 0,
            next_msg: 0,
            next_tx: 0,
            max_steps: 1_000_000,
            steps: 0,
        }
    }

    /// Overrides the safety cap on the number of steps a run may take.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Bounds the trace's raw action log to a sliding window of roughly
    /// `capacity` recent actions (see [`Trace::with_action_capacity`]).
    /// The per-transaction aggregates — and therefore
    /// [`Simulation::history`] — are byte-for-byte unaffected; only
    /// retrospective action inspection loses evicted entries.  The
    /// per-message causality table is pruned per transaction at RESP, so a
    /// bounded run's trace memory is O(window + in-flight), which is what
    /// the workload driver and the flood benches use for the
    /// 100k+/million-transaction rows.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        assert!(
            self.trace.is_empty(),
            "set the trace capacity before running the simulation"
        );
        self.trace = Trace::with_action_capacity(capacity);
        self
    }

    /// Registers a process.  Panics if a process with the same id exists.
    pub fn add_process(&mut self, process: P) {
        let id = process.id();
        let prev = self.processes.insert(id, process);
        assert!(prev.is_none(), "duplicate process id {id}");
    }

    /// Schedules `spec` to be invoked by `client` at simulation time `at` —
    /// an O(log n) heap push.  Returns the transaction id the invocation
    /// will carry.  Dispatch order is deterministic: earliest `(at, tx)`
    /// first.
    pub fn invoke_at(&mut self, at: u64, client: ClientId, spec: TxSpec) -> TxId {
        let tx = TxId(self.next_tx);
        self.next_tx += 1;
        self.invocations.push(QueuedInvocation { at, tx, client, spec });
        tx
    }

    /// Schedules `spec` to be invoked immediately (at the current time).
    pub fn invoke_now(&mut self, client: ClientId, spec: TxSpec) -> TxId {
        self.invoke_at(self.now, client, spec)
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of messages currently in flight.
    pub fn pending_count(&self) -> usize {
        self.pool.len()
    }

    /// The in-flight messages, in send (id) order.
    pub fn pending(&self) -> impl Iterator<Item = &PendingMessage<P::Msg>> + '_ {
        self.pool.iter()
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Access to a registered process (for assertions in tests/harnesses).
    pub fn process(&self, id: ProcessId) -> Option<&P> {
        self.processes.get(&id)
    }

    /// True if transaction `tx` has completed.
    pub fn is_complete(&self, tx: TxId) -> bool {
        self.records.get(&tx).map(|r| r.is_complete()).unwrap_or(false)
    }

    /// True if there is nothing left to do.
    pub fn is_quiescent(&self) -> bool {
        self.pool.is_empty() && self.invocations.is_empty()
    }

    /// Executes one step: dispatches the earliest due invocation if any,
    /// otherwise delivers the message chosen by the scheduler.  O(log n).
    pub fn step(&mut self) -> StepOutcome {
        self.steps += 1;
        assert!(
            self.steps <= self.max_steps,
            "simulation exceeded {} steps; likely livelock",
            self.max_steps
        );

        // Dispatch an invocation if one is due at or before `now`, or if
        // there are no pending messages (time jumps forward to the next
        // invocation).
        let due = self
            .invocations
            .peek()
            .map(|inv| inv.at <= self.now || self.pool.is_empty())
            .unwrap_or(false);
        if due {
            let inv = self.invocations.pop().expect("peeked invocation");
            self.now = self.now.max(inv.at) + 1;
            self.dispatch_invocation(inv.tx, inv.client, inv.spec);
            return StepOutcome::Invoked(inv.tx);
        }

        match self.scheduler.next(&mut self.pool, self.now) {
            Some(id) => {
                let msg = self
                    .pool
                    .remove(id)
                    .expect("scheduler must choose a live message");
                self.now = self.now.max(msg.deliver_at.unwrap_or(self.now)) + 1;
                self.deliver(msg);
                StepOutcome::Delivered(id)
            }
            None => StepOutcome::Quiescent,
        }
    }

    /// Runs until no work remains (or the step cap is hit).  Returns the
    /// number of steps executed.
    pub fn run_until_quiescent(&mut self) -> u64 {
        let start = self.steps;
        while !self.is_quiescent() {
            if self.step() == StepOutcome::Quiescent {
                break;
            }
        }
        self.steps - start
    }

    /// Runs until transaction `tx` completes (or the system goes quiescent).
    /// Returns `true` if the transaction completed.
    pub fn run_until_complete(&mut self, tx: TxId) -> bool {
        while !self.is_complete(tx) {
            if self.is_quiescent() || self.step() == StepOutcome::Quiescent {
                break;
            }
        }
        self.is_complete(tx)
    }

    /// Manual (adversarial) driving: delivers the first pending message (in
    /// send order) matching `pred`, bypassing the scheduler.  Returns the
    /// delivered message id, or `None` if nothing matched.
    pub fn deliver_where<F>(&mut self, pred: F) -> Option<MsgId>
    where
        F: Fn(&PendingMessage<P::Msg>) -> bool,
    {
        let id = self.pool.iter().find(|p| pred(p)).map(|p| p.id)?;
        let msg = self.pool.remove(id).expect("matched message is live");
        self.now += 1;
        self.deliver(msg);
        Some(id)
    }

    /// Manual driving: dispatches the next scheduled invocation for `client`
    /// immediately, regardless of its planned time.  Returns the transaction
    /// id, or `None` if no invocation is queued for that client.
    pub fn force_invoke(&mut self, client: ClientId) -> Option<TxId> {
        // "Next" = smallest (at, tx) among that client's plans, matching the
        // engine's dispatch order.  Heap iteration is unordered, so take the
        // minimum explicitly; this adversarial path may be O(n).
        let target = self
            .invocations
            .iter()
            .filter(|inv| inv.client == client)
            .max() // QueuedInvocation's Ord is reversed: max = earliest
            .cloned()?;
        self.invocations.retain(|inv| inv.tx != target.tx);
        self.now += 1;
        self.dispatch_invocation(target.tx, target.client, target.spec);
        Some(target.tx)
    }

    fn dispatch_invocation(&mut self, tx: TxId, client: ClientId, spec: TxSpec) {
        let pid = ProcessId::Client(client);
        self.trace.record(
            self.now,
            pid,
            ActionKind::Invoke {
                tx,
                kind: spec.kind(),
            },
        );
        self.records
            .insert(tx, TxRecord::invoked(tx, client, spec.clone(), self.now));
        let mut effects = Effects::new(self.now);
        let process = self
            .processes
            .get_mut(&pid)
            .unwrap_or_else(|| panic!("invocation for unknown process {pid}"));
        process.on_invoke(tx, spec, &mut effects);
        self.apply_effects(pid, None, effects);
    }

    fn deliver(&mut self, msg: PendingMessage<P::Msg>) {
        let info = msg.msg.info();
        self.trace.record(
            self.now,
            msg.dst,
            ActionKind::Recv {
                msg: msg.id,
                from: msg.src,
                info,
            },
        );
        let mut effects = Effects::new(self.now);
        let process = self
            .processes
            .get_mut(&msg.dst)
            .unwrap_or_else(|| panic!("message to unknown process {}", msg.dst));
        process.on_message(msg.src, msg.msg, &mut effects);
        self.apply_effects(msg.dst, Some(msg.id), effects);
    }

    fn apply_effects(&mut self, at: ProcessId, parent: Option<MsgId>, effects: Effects<P::Msg>) {
        let (sends, responses) = effects.into_parts();
        for (to, m) in sends {
            let id = MsgId(self.next_msg);
            self.next_msg += 1;
            let info = m.info();
            self.trace.record(
                self.now,
                at,
                ActionKind::Send {
                    msg: id,
                    to,
                    parent,
                    info,
                },
            );
            let deliver_at = self.scheduler.on_send(self.now);
            self.pool.insert(PendingMessage {
                id,
                src: at,
                dst: to,
                msg: m,
                sent_at: self.now,
                parent,
                deliver_at,
            });
        }
        for (tx, outcome) in responses {
            self.trace.record(self.now, at, ActionKind::Respond { tx });
            if let Some(rec) = self.records.get_mut(&tx) {
                rec.responded_at = Some(self.now);
                rec.outcome = Some(outcome);
            }
        }
    }

    /// Assembles the [`History`] of the run so far.  Rounds,
    /// versions-per-read, non-blocking flags and C2C counts come from the
    /// trace's per-transaction indexes, so this is a single pass over the
    /// transaction records (plus the final sort), not a trace rescan per
    /// transaction.
    pub fn history(&self) -> History {
        let mut history = History::new();
        for (tx, rec) in &self.records {
            let mut rec = rec.clone();
            let client = ProcessId::Client(rec.client);
            rec.rounds = self.trace.rounds_of(*tx, client);
            rec.c2c_messages = self.trace.c2c_count(*tx);
            if rec.kind() == TxKind::Read {
                rec.reads = self.trace.read_results(*tx).to_vec();
            }
            history.push(rec);
        }
        history.records.sort_by_key(|r| (r.invoked_at, r.tx_id));
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgInfo, SimMessage};
    use crate::scheduler::{FifoScheduler, LatencyScheduler, RandomScheduler};
    use snow_core::{
        Key, ObjectId, ObjectRead, ReadOutcome, ServerId, TxOutcome, Value,
    };

    /// A toy read protocol: the client sends one request per object, each
    /// server replies with the initial value, the client responds when all
    /// replies are in.
    #[derive(Debug, Clone)]
    enum ToyMsg {
        Req { tx: TxId, object: ObjectId },
        Resp { tx: TxId, object: ObjectId },
    }

    impl SimMessage for ToyMsg {
        fn info(&self) -> MsgInfo {
            match self {
                ToyMsg::Req { tx, object } => MsgInfo::read_request(*tx, Some(*object)),
                ToyMsg::Resp { tx, object } => MsgInfo::read_response(*tx, Some(*object), 1),
            }
        }
    }

    enum ToyNode {
        Client {
            id: ClientId,
            outstanding: Option<(TxId, usize, Vec<ObjectRead>)>,
        },
        Server {
            id: ServerId,
        },
    }

    impl Process for ToyNode {
        type Msg = ToyMsg;

        fn id(&self) -> ProcessId {
            match self {
                ToyNode::Client { id, .. } => ProcessId::Client(*id),
                ToyNode::Server { id } => ProcessId::Server(*id),
            }
        }

        fn on_invoke(&mut self, tx_id: TxId, spec: TxSpec, effects: &mut Effects<ToyMsg>) {
            let ToyNode::Client { outstanding, .. } = self else {
                panic!("server invoked")
            };
            let objects = spec.objects();
            *outstanding = Some((tx_id, objects.len(), Vec::new()));
            for o in objects {
                effects.send(
                    ProcessId::Server(ServerId(o.0)),
                    ToyMsg::Req { tx: tx_id, object: o },
                );
            }
        }

        fn on_message(&mut self, from: ProcessId, msg: ToyMsg, effects: &mut Effects<ToyMsg>) {
            match (self, msg) {
                (ToyNode::Server { .. }, ToyMsg::Req { tx, object }) => {
                    effects.send(from, ToyMsg::Resp { tx, object });
                }
                (ToyNode::Client { outstanding, .. }, ToyMsg::Resp { tx, object }) => {
                    if let Some((cur, want, got)) = outstanding {
                        if *cur == tx {
                            got.push(ObjectRead {
                                object,
                                key: Key::initial(),
                                value: Value::INITIAL,
                            });
                            if got.len() == *want {
                                effects.respond(
                                    tx,
                                    TxOutcome::Read(ReadOutcome {
                                        reads: got.clone(),
                                        tag: None,
                                    }),
                                );
                                *outstanding = None;
                            }
                        }
                    }
                }
                _ => panic!("unexpected message"),
            }
        }
    }

    fn toy_sim<S: Scheduler<ToyMsg>>(scheduler: S) -> Simulation<ToyNode, S> {
        let mut sim = Simulation::new(scheduler);
        sim.add_process(ToyNode::Client {
            id: ClientId(0),
            outstanding: None,
        });
        sim.add_process(ToyNode::Server { id: ServerId(0) });
        sim.add_process(ToyNode::Server { id: ServerId(1) });
        sim
    }

    #[test]
    fn toy_read_completes_under_fifo() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
        assert!(!sim.is_complete(tx));
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
        assert!(sim.is_quiescent());

        let h = sim.history();
        assert_eq!(h.len(), 1);
        let rec = h.get(tx).unwrap();
        assert!(rec.is_complete());
        assert_eq!(rec.rounds, 1);
        assert_eq!(rec.reads.len(), 2);
        assert!(rec.all_reads_nonblocking());
        assert_eq!(rec.max_versions_per_read(), 1);
        assert_eq!(rec.c2c_messages, 0);
    }

    #[test]
    fn toy_read_completes_under_random_and_latency_schedulers() {
        for seed in 0..5u64 {
            let mut sim = toy_sim(RandomScheduler::new(seed));
            let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
            sim.run_until_quiescent();
            assert!(sim.is_complete(tx), "seed {seed}");
        }
        let mut sim = toy_sim(LatencyScheduler::new(3, 1, 10));
        let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
        let rec = sim.history();
        assert!(rec.get(tx).unwrap().latency().unwrap() > 0);
    }

    #[test]
    fn manual_delivery_allows_adversarial_ordering() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
        // Dispatch the invocation only.
        assert_eq!(sim.step(), StepOutcome::Invoked(tx));
        assert_eq!(sim.pending_count(), 2);
        // The pending view iterates in send order.
        let dsts: Vec<ProcessId> = sim.pending().map(|p| p.dst).collect();
        assert_eq!(
            dsts,
            vec![ProcessId::Server(ServerId(0)), ProcessId::Server(ServerId(1))]
        );
        // Deliver the request to s1 before the one to s0.
        let delivered = sim.deliver_where(|p| p.dst == ProcessId::Server(ServerId(1)));
        assert!(delivered.is_some());
        // No match for an already-delivered destination+direction.
        assert!(sim
            .deliver_where(|p| p.dst == ProcessId::Server(ServerId(99)))
            .is_none());
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
    }

    #[test]
    fn force_invoke_dispatches_early() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx = sim.invoke_at(1_000, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        assert_eq!(sim.force_invoke(ClientId(0)), Some(tx));
        assert_eq!(sim.force_invoke(ClientId(0)), None);
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
    }

    #[test]
    fn force_invoke_takes_the_earliest_plan_for_the_client() {
        let mut sim = toy_sim(FifoScheduler::new());
        let late = sim.invoke_at(500, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        let early = sim.invoke_at(100, ClientId(0), TxSpec::read(vec![ObjectId(1)]));
        assert_eq!(sim.force_invoke(ClientId(0)), Some(early));
        assert_eq!(sim.force_invoke(ClientId(0)), Some(late));
    }

    #[test]
    fn run_until_complete_stops_at_target() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx1 = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        let tx2 = sim.invoke_at(50, ClientId(0), TxSpec::read(vec![ObjectId(1)]));
        assert!(sim.run_until_complete(tx1));
        assert!(sim.is_complete(tx1));
        assert!(sim.run_until_complete(tx2));
    }

    #[test]
    fn history_sorted_by_invocation_time() {
        let mut sim = toy_sim(FifoScheduler::new());
        let _t2 = sim.invoke_at(10, ClientId(0), TxSpec::read(vec![ObjectId(1)]));
        let t1 = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        sim.run_until_quiescent();
        let h = sim.history();
        assert_eq!(h.records[0].tx_id, t1);
    }

    #[test]
    fn bulk_invocation_scheduling_dispatches_in_time_order() {
        let mut sim = toy_sim(FifoScheduler::new());
        // Schedule in reverse time order; dispatch must be (at, tx) order.
        let txs: Vec<TxId> = (0..10u64)
            .rev()
            .map(|at| sim.invoke_at(at * 10, ClientId(0), TxSpec::read(vec![ObjectId(0)])))
            .collect();
        let mut invoked = Vec::new();
        while !sim.is_quiescent() {
            if let StepOutcome::Invoked(tx) = sim.step() {
                invoked.push(tx);
            }
        }
        let mut expected = txs.clone();
        expected.reverse(); // earliest planned time = last created
        assert_eq!(invoked, expected);
    }

    #[test]
    #[should_panic]
    fn duplicate_process_ids_are_rejected() {
        let mut sim = toy_sim(FifoScheduler::new());
        sim.add_process(ToyNode::Server { id: ServerId(0) });
    }

    #[test]
    fn bounded_trace_mode_preserves_histories() {
        let run = |capacity: Option<usize>| {
            let mut sim = toy_sim(RandomScheduler::new(11));
            if let Some(cap) = capacity {
                sim = sim.with_trace_capacity(cap);
            }
            for i in 0..50u64 {
                sim.invoke_at(i * 3, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
            }
            sim.run_until_quiescent();
            (format!("{:?}", sim.history()), sim.trace().actions().len())
        };
        let (unbounded_history, unbounded_actions) = run(None);
        let (bounded_history, bounded_actions) = run(Some(16));
        // Same seed, same schedule, same derived history — the aggregates
        // do not depend on the retained window.
        assert_eq!(bounded_history, unbounded_history);
        assert!(bounded_actions <= 32, "window bounded at 2×capacity");
        assert!(unbounded_actions > 32);
    }

    #[test]
    #[should_panic(expected = "before running")]
    fn trace_capacity_cannot_be_set_mid_run() {
        let mut sim = toy_sim(FifoScheduler::new());
        sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        sim.run_until_quiescent();
        let _ = sim.with_trace_capacity(4);
    }
}
