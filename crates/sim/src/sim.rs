//! The serial simulation façade: one dispatch core (the private
//! `engine` module) driving all processes.
//!
//! # Event-queue architecture and complexity contract
//!
//! The engine keeps three indexed structures so the step loop does no
//! linear scanning:
//!
//! * in-flight messages live in a [`MessagePool`](crate::MessagePool) — a
//!   slot vector with O(1) swap-remove, a `(delivery_time, MsgId)` binary
//!   heap for O(log n) earliest-delivery pops, and a Fenwick live-index for
//!   O(log n) rank selection in send order (see [`crate::pool`]);
//! * planned invocations live in a `BinaryHeap` keyed by `(at, TxId)`, so
//!   scheduling n invocations is O(n log n) total (the old sorted-`Vec`
//!   insert was O(n² log n)) and the next due invocation is an O(1) peek;
//! * the [`Trace`] folds every recorded action into per-transaction indexes
//!   (rounds, C2C counts, read instrumentation, parent links), so
//!   [`Simulation::history`] is a single pass over the transaction records
//!   instead of O(transactions × actions).
//!
//! Per step the engine therefore does O(log n) work plus the process
//! handler's own cost, for any scheduler.  Adversarial driving
//! ([`Simulation::deliver_where`], [`Simulation::force_invoke`]) trades this
//! for expressiveness: it scans in send order (O(matches · log n)) exactly
//! like the historical `Vec`-based engine, which keeps the
//! `snow-impossibility` constructions unchanged.  Adversaries control
//! *order*, never *time*: the dispatch core clamps the clock so no event is
//! dispatched before its own timestamp (see the `engine` module).
//!
//! # One dispatch core
//!
//! Every dispatch decision — invocation-vs-delivery choice, clock advance,
//! handler execution, effect application, step accounting — is made by
//! `engine::DispatchCore`, the same type the sharded
//! [`crate::ParallelSimulation`] instantiates once per shard.  `Simulation`
//! is the 1-shard wrapper (`index 0, stride 1`): it owns exactly one core,
//! every process is local to it, and its cross-shard outbox is vestigial.
//! There is no second step-loop implementation to keep in lockstep.
//!
//! Determinism: a run is a pure function of `(configuration, scheduler
//! seed, invocation plan)`.  The indexed engine reproduces the linear-scan
//! engine's schedules bit-for-bit — verified by the `determinism`
//! integration test against committed golden histories.

use crate::engine::{DispatchCore, QueuedInvocation};
use crate::fault::{FaultSchedule, FaultState, RestartFn};
use crate::message::PendingMessage;
use crate::scheduler::Scheduler;
use crate::trace::Trace;
use snow_core::{ClientId, History, Process, ProcessId, TxId, TxSpec};
use snow_obs::{NullSink, ShardEvent, TraceSink};

pub use crate::engine::StepOutcome;

/// A planned invocation: at simulation time `at`, client `client` invokes
/// `spec` (well-formedness — one outstanding transaction per client — is the
/// harness's responsibility, checked by `snow-checker`).
#[derive(Debug, Clone)]
pub struct InvocationPlan {
    /// Simulation time at which the INV event occurs.
    pub at: u64,
    /// The invoking client.
    pub client: ClientId,
    /// The transaction body.
    pub spec: TxSpec,
}

/// One batch of newly committed transactions drained from a simulator for
/// streaming certification (see `Simulation::drain_commits` and
/// `ParallelSimulation::drain_commits`).
///
/// `records` are the completed transactions committed since the previous
/// drain, in global RESP order (`(responded_at, tx_id)`), each already
/// enriched with its trace aggregates.  `inv_floor` is a lower bound on the
/// `invoked_at` of every record any *future* drain can return — the
/// watermark an incremental checker may advance its certification frontier
/// to after ingesting the batch.
#[derive(Debug, Clone, Default)]
pub struct CommitDrain {
    /// Newly committed transactions, in RESP order.
    pub records: Vec<snow_core::TxRecord>,
    /// Lower bound on every future drain's `invoked_at` values.
    pub inv_floor: u64,
}

/// A deterministic simulation of a set of processes exchanging messages over
/// reliable asynchronous channels: the 1-shard instantiation of the
/// workspace's single dispatch core (the private `engine` module).
///
/// `O` is the observability sink ([`snow_obs::TraceSink`]); the default
/// [`NullSink`] compiles every emission site away, so an unobserved
/// `Simulation<P, S>` is exactly the pre-observability simulator.  Swap the
/// sink with [`Simulation::with_sink`] and drain virtual-time events with
/// [`Simulation::drain_obs_events`].
pub struct Simulation<P: Process, S, O: TraceSink = NullSink> {
    pub(crate) core: DispatchCore<P, S, O>,
    next_tx: u64,
}

impl<P, S> Simulation<P, S>
where
    P: Process,
    S: Scheduler<P::Msg>,
{
    /// Creates an empty simulation driven by `scheduler` (unobserved: the
    /// default [`NullSink`]).
    pub fn new(scheduler: S) -> Self {
        Simulation {
            core: DispatchCore::new(0, 1, scheduler),
            next_tx: 0,
        }
    }
}

impl<P, S, O> Simulation<P, S, O>
where
    P: Process,
    S: Scheduler<P::Msg>,
    O: TraceSink,
{
    /// Rebuilds the simulation around a different observability sink (type
    /// changing: the dispatch core re-monomorphizes its emission sites for
    /// `O2`).  Set the sink before running; events emitted into a previous
    /// sink do not carry over.
    pub fn with_sink<O2: TraceSink>(self, sink: O2) -> Simulation<P, S, O2> {
        Simulation { core: self.core.with_sink(sink), next_tx: self.next_tx }
    }

    /// Yields and clears the observability events collected so far, all
    /// tagged shard 0 (the serial engine is one shard) and stamped with
    /// virtual ticks.  Empty for non-recording sinks such as [`NullSink`].
    pub fn drain_obs_events(&mut self) -> Vec<ShardEvent> {
        self.core
            .drain_events()
            .into_iter()
            .map(|event| ShardEvent { shard: 0, event })
            .collect()
    }

    /// Overrides the safety cap on the number of steps a run may take.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.core.max_steps = max_steps;
        self
    }

    /// Bounds the trace's raw action log to a sliding window of roughly
    /// `capacity` recent actions (see [`Trace::with_action_capacity`]).
    /// The per-transaction aggregates — and therefore
    /// [`Simulation::history`] — are byte-for-byte unaffected; only
    /// retrospective action inspection loses evicted entries.  The
    /// per-message causality table is pruned per transaction at RESP, so a
    /// bounded run's trace memory is O(window + in-flight), which is what
    /// the workload driver and the flood benches use for the
    /// 100k+/million-transaction rows.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        assert!(
            self.core.trace.is_empty(),
            "set the trace capacity before running the simulation"
        );
        self.core.trace = Trace::with_action_capacity(capacity);
        self
    }

    /// Attaches a [`FaultSchedule`] to the run (builder style; set it
    /// before running).  `restart` is the factory that rebuilds a crashed
    /// process from fresh state at recovery — required iff the schedule
    /// contains crash windows.  An empty schedule is structurally inert:
    /// the engine's fault checks are guarded by the state's presence, and
    /// histories stay byte-identical to an unfaulted run.
    ///
    /// With a schedule attached, the run loops retire transactions that can
    /// no longer complete (their messages dropped, their server's state
    /// lost) as [`snow_core::TxOutcome::Aborted`] once the system goes
    /// quiescent, so histories stay complete under faults.
    pub fn with_faults(mut self, schedule: FaultSchedule, restart: Option<RestartFn<P>>) -> Self {
        self.core.faults = Some(FaultState::new(schedule, restart));
        self
    }

    /// Registers a process.  Panics if a process with the same id exists.
    pub fn add_process(&mut self, process: P) {
        self.core.add_process(process);
    }

    /// Schedules `spec` to be invoked by `client` at simulation time `at` —
    /// an O(log n) heap push.  Returns the transaction id the invocation
    /// will carry.  Dispatch order is deterministic: earliest `(at, tx)`
    /// first.
    pub fn invoke_at(&mut self, at: u64, client: ClientId, spec: TxSpec) -> TxId {
        let tx = TxId(self.next_tx);
        self.next_tx += 1;
        self.core.invocations.push(QueuedInvocation { at, tx, client, spec });
        tx
    }

    /// Schedules `spec` to be invoked immediately (at the current time).
    pub fn invoke_now(&mut self, client: ClientId, spec: TxSpec) -> TxId {
        self.invoke_at(self.core.now, client, spec)
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.core.now
    }

    /// Number of messages currently in flight.
    pub fn pending_count(&self) -> usize {
        self.core.pool.len()
    }

    /// The in-flight messages, in send (id) order.
    pub fn pending(&self) -> impl Iterator<Item = &PendingMessage<P::Msg>> + '_ {
        self.core.pool.iter()
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Access to a registered process (for assertions in tests/harnesses).
    pub fn process(&self, id: ProcessId) -> Option<&P> {
        self.core.processes.get(&id)
    }

    /// True if transaction `tx` has completed.
    pub fn is_complete(&self, tx: TxId) -> bool {
        self.core.is_complete(tx)
    }

    /// True if there is nothing left to do.
    pub fn is_quiescent(&self) -> bool {
        self.core.is_quiescent()
    }

    /// Runs until no work remains (or the step cap is hit).  Returns the
    /// number of steps executed.
    pub fn run_until_quiescent(&mut self) -> u64 {
        let start = self.core.steps;
        while !self.is_quiescent() {
            if self.step() == StepOutcome::Quiescent {
                break;
            }
        }
        self.core.abort_orphans();
        self.core.steps - start
    }

    /// Runs until transaction `tx` completes (or the system goes quiescent).
    /// Returns `true` if the transaction completed — which under a fault
    /// schedule includes completing as `Aborted`.
    pub fn run_until_complete(&mut self, tx: TxId) -> bool {
        while !self.is_complete(tx) {
            if self.is_quiescent() || self.step() == StepOutcome::Quiescent {
                break;
            }
        }
        self.core.abort_orphans();
        self.is_complete(tx)
    }

    /// Runs until **any** transaction in `watch` completes (or the system
    /// goes quiescent).  Returns the first completed transaction in `watch`
    /// order — a deterministic tie-break when one step completes several.
    ///
    /// This is the open-loop driver's primitive: with one outstanding
    /// transaction per client it needs "wake me when any client frees", not
    /// [`Simulation::run_until_complete`]'s single-target wait (which would
    /// stall every other client's next arrival behind one slow
    /// transaction).  An empty `watch` returns `None` without stepping.
    pub fn run_until_any_complete(&mut self, watch: &[TxId]) -> Option<TxId> {
        if watch.is_empty() {
            return None;
        }
        loop {
            if let Some(&tx) = watch.iter().find(|&&tx| self.is_complete(tx)) {
                return Some(tx);
            }
            if self.is_quiescent() || self.step() == StepOutcome::Quiescent {
                // Quiescent with watched transactions still in flight: under
                // a fault schedule those can never complete — retire them as
                // aborted before the final scan so the caller is never
                // livelocked waiting on a transaction whose server died.
                self.core.abort_orphans();
                return watch.iter().copied().find(|&tx| self.is_complete(tx));
            }
        }
    }

    /// Assembles the [`History`] of the run so far.  Rounds,
    /// versions-per-read, non-blocking flags and C2C counts come from the
    /// trace's per-transaction indexes, so this is a single pass over the
    /// transaction records (plus the final sort), not a trace rescan per
    /// transaction.
    pub fn history(&self) -> History {
        let mut history = History::new();
        self.core
            .collect_records(&mut history, |tx| self.core.trace.c2c_count(tx));
        history.records.sort_by_key(|r| (r.invoked_at, r.tx_id));
        history
    }

    /// Drains the transactions committed since the previous drain, in RESP
    /// order, retiring the consumed commit-log prefix — the incremental
    /// feed for streaming certification.  On the serial engine the single
    /// core's clock is the global clock, so its local RESP order *is* the
    /// global commit order and nothing is ever held back.
    pub fn drain_commits(&mut self) -> CommitDrain {
        let records = self
            .core
            .new_commits(|tx| self.core.trace.c2c_count(tx));
        self.core.retire_drained_commits();
        CommitDrain { records, inv_floor: self.core.inv_floor() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgInfo, SimMessage};
    use crate::scheduler::{FifoScheduler, LatencyScheduler, RandomScheduler};
    use snow_core::{
        Effects, Key, ObjectId, ObjectRead, ReadOutcome, ServerId, TxOutcome, TxSpec, Value,
    };

    /// A toy read protocol: the client sends one request per object, each
    /// server replies with the initial value, the client responds when all
    /// replies are in.
    #[derive(Debug, Clone)]
    enum ToyMsg {
        Req { tx: TxId, object: ObjectId },
        Resp { tx: TxId, object: ObjectId },
    }

    impl SimMessage for ToyMsg {
        fn info(&self) -> MsgInfo {
            match self {
                ToyMsg::Req { tx, object } => MsgInfo::read_request(*tx, Some(*object)),
                ToyMsg::Resp { tx, object } => MsgInfo::read_response(*tx, Some(*object), 1),
            }
        }
    }

    enum ToyNode {
        Client {
            id: ClientId,
            outstanding: Option<(TxId, usize, Vec<ObjectRead>)>,
        },
        Server {
            id: ServerId,
        },
    }

    impl Process for ToyNode {
        type Msg = ToyMsg;

        fn id(&self) -> ProcessId {
            match self {
                ToyNode::Client { id, .. } => ProcessId::Client(*id),
                ToyNode::Server { id } => ProcessId::Server(*id),
            }
        }

        fn on_invoke(&mut self, tx_id: TxId, spec: TxSpec, effects: &mut Effects<ToyMsg>) {
            let ToyNode::Client { outstanding, .. } = self else {
                panic!("server invoked")
            };
            let objects = spec.objects();
            *outstanding = Some((tx_id, objects.len(), Vec::new()));
            for o in objects {
                effects.send(
                    ProcessId::Server(ServerId(o.0)),
                    ToyMsg::Req { tx: tx_id, object: o },
                );
            }
        }

        fn on_message(&mut self, from: ProcessId, msg: ToyMsg, effects: &mut Effects<ToyMsg>) {
            match (self, msg) {
                (ToyNode::Server { .. }, ToyMsg::Req { tx, object }) => {
                    effects.send(from, ToyMsg::Resp { tx, object });
                }
                (ToyNode::Client { outstanding, .. }, ToyMsg::Resp { tx, object }) => {
                    if let Some((cur, want, got)) = outstanding {
                        if *cur == tx {
                            got.push(ObjectRead {
                                object,
                                key: Key::initial(),
                                value: Value::INITIAL,
                            });
                            if got.len() == *want {
                                effects.respond(
                                    tx,
                                    TxOutcome::Read(ReadOutcome {
                                        reads: got.clone(),
                                        tag: None,
                                    }),
                                );
                                *outstanding = None;
                            }
                        }
                    }
                }
                _ => panic!("unexpected message"),
            }
        }
    }

    fn toy_sim<S: Scheduler<ToyMsg>>(scheduler: S) -> Simulation<ToyNode, S> {
        let mut sim = Simulation::new(scheduler);
        sim.add_process(ToyNode::Client {
            id: ClientId(0),
            outstanding: None,
        });
        sim.add_process(ToyNode::Server { id: ServerId(0) });
        sim.add_process(ToyNode::Server { id: ServerId(1) });
        sim
    }

    #[test]
    fn toy_read_completes_under_fifo() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
        assert!(!sim.is_complete(tx));
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
        assert!(sim.is_quiescent());

        let h = sim.history();
        assert_eq!(h.len(), 1);
        let rec = h.get(tx).unwrap();
        assert!(rec.is_complete());
        assert_eq!(rec.rounds, 1);
        assert_eq!(rec.reads.len(), 2);
        assert!(rec.all_reads_nonblocking());
        assert_eq!(rec.max_versions_per_read(), 1);
        assert_eq!(rec.c2c_messages, 0);
    }

    #[test]
    fn toy_read_completes_under_random_and_latency_schedulers() {
        for seed in 0..5u64 {
            let mut sim = toy_sim(RandomScheduler::new(seed));
            let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
            sim.run_until_quiescent();
            assert!(sim.is_complete(tx), "seed {seed}");
        }
        let mut sim = toy_sim(LatencyScheduler::new(3, 1, 10));
        let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
        let rec = sim.history();
        assert!(rec.get(tx).unwrap().latency().unwrap() > 0);
    }

    #[test]
    fn manual_delivery_allows_adversarial_ordering() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
        // Dispatch the invocation only.
        assert_eq!(sim.step(), StepOutcome::Invoked(tx));
        assert_eq!(sim.pending_count(), 2);
        // The pending view iterates in send order.
        let dsts: Vec<ProcessId> = sim.pending().map(|p| p.dst).collect();
        assert_eq!(
            dsts,
            vec![ProcessId::Server(ServerId(0)), ProcessId::Server(ServerId(1))]
        );
        // Deliver the request to s1 before the one to s0.
        let delivered = sim.deliver_where(|p| p.dst == ProcessId::Server(ServerId(1)));
        assert!(delivered.is_some());
        // No match for an already-delivered destination+direction.
        assert!(sim
            .deliver_where(|p| p.dst == ProcessId::Server(ServerId(99)))
            .is_none());
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
    }

    #[test]
    fn force_invoke_dispatches_early() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx = sim.invoke_at(1_000, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        assert_eq!(sim.force_invoke(ClientId(0)), Some(tx));
        assert_eq!(sim.force_invoke(ClientId(0)), None);
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
    }

    #[test]
    fn force_invoke_takes_the_earliest_plan_for_the_client() {
        let mut sim = toy_sim(FifoScheduler::new());
        let late = sim.invoke_at(500, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        let early = sim.invoke_at(100, ClientId(0), TxSpec::read(vec![ObjectId(1)]));
        assert_eq!(sim.force_invoke(ClientId(0)), Some(early));
        assert_eq!(sim.force_invoke(ClientId(0)), Some(late));
    }

    #[test]
    fn run_until_complete_stops_at_target() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx1 = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        let tx2 = sim.invoke_at(50, ClientId(0), TxSpec::read(vec![ObjectId(1)]));
        assert!(sim.run_until_complete(tx1));
        assert!(sim.is_complete(tx1));
        assert!(sim.run_until_complete(tx2));
    }

    #[test]
    fn run_until_any_complete_returns_the_first_finisher() {
        let mut sim = toy_sim(FifoScheduler::new());
        let slow = sim.invoke_at(1_000, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        let fast = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(1)]));
        // `fast` completes first even though `slow` leads the watch list.
        assert_eq!(sim.run_until_any_complete(&[slow, fast]), Some(fast));
        assert!(!sim.is_complete(slow));
        assert_eq!(sim.run_until_any_complete(&[slow]), Some(slow));
        // Empty watch: no stepping, no result.
        let before = sim.now();
        assert_eq!(sim.run_until_any_complete(&[]), None);
        assert_eq!(sim.now(), before);
        // Nothing left to complete a never-scheduled transaction.
        assert_eq!(sim.run_until_any_complete(&[TxId(99)]), None);
    }

    #[test]
    fn history_sorted_by_invocation_time() {
        let mut sim = toy_sim(FifoScheduler::new());
        let _t2 = sim.invoke_at(10, ClientId(0), TxSpec::read(vec![ObjectId(1)]));
        let t1 = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        sim.run_until_quiescent();
        let h = sim.history();
        assert_eq!(h.records[0].tx_id, t1);
    }

    #[test]
    fn bulk_invocation_scheduling_dispatches_in_time_order() {
        let mut sim = toy_sim(FifoScheduler::new());
        // Schedule in reverse time order; dispatch must be (at, tx) order.
        let txs: Vec<TxId> = (0..10u64)
            .rev()
            .map(|at| sim.invoke_at(at * 10, ClientId(0), TxSpec::read(vec![ObjectId(0)])))
            .collect();
        let mut invoked = Vec::new();
        while !sim.is_quiescent() {
            if let StepOutcome::Invoked(tx) = sim.step() {
                invoked.push(tx);
            }
        }
        let mut expected = txs.clone();
        expected.reverse(); // earliest planned time = last created
        assert_eq!(invoked, expected);
    }

    #[test]
    #[should_panic]
    fn duplicate_process_ids_are_rejected() {
        let mut sim = toy_sim(FifoScheduler::new());
        sim.add_process(ToyNode::Server { id: ServerId(0) });
    }

    #[test]
    fn bounded_trace_mode_preserves_histories() {
        let run = |capacity: Option<usize>| {
            let mut sim = toy_sim(RandomScheduler::new(11));
            if let Some(cap) = capacity {
                sim = sim.with_trace_capacity(cap);
            }
            for i in 0..50u64 {
                sim.invoke_at(i * 3, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
            }
            sim.run_until_quiescent();
            (format!("{:?}", sim.history()), sim.trace().actions().len())
        };
        let (unbounded_history, unbounded_actions) = run(None);
        let (bounded_history, bounded_actions) = run(Some(16));
        // Same seed, same schedule, same derived history — the aggregates
        // do not depend on the retained window.
        assert_eq!(bounded_history, unbounded_history);
        assert!(bounded_actions <= 32, "window bounded at 2×capacity");
        assert!(unbounded_actions > 32);
    }

    #[test]
    #[should_panic(expected = "before running")]
    fn trace_capacity_cannot_be_set_mid_run() {
        let mut sim = toy_sim(FifoScheduler::new());
        sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        sim.run_until_quiescent();
        let _ = sim.with_trace_capacity(4);
    }

    /// Regression for the adversarial-delivery clock-skew bug: before the
    /// dispatch-core unification, `deliver_where` advanced `now += 1`
    /// without clamping to the delivered message's `deliver_at`, so a
    /// latency-stamped message delivered adversarially could enable a RESP
    /// timestamped *before* the delivery that caused it — silently
    /// widening/inverting the real-time intervals the checkers turn into
    /// precedence edges.  Post-fix, the clock clamps exactly like a
    /// scheduled delivery's.
    #[test]
    fn adversarial_delivery_cannot_rewind_time_before_deliver_at() {
        // Fixed 50-tick latency: the request sent at the INV (time 1) is
        // stamped deliver_at = 51.
        let mut sim = toy_sim(LatencyScheduler::new(1, 50, 50));
        let tx = sim.invoke_at(0, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        assert_eq!(sim.step(), StepOutcome::Invoked(tx));
        let request_deliver_at = sim.pending().next().unwrap().deliver_at.unwrap();
        assert_eq!(request_deliver_at, 51);

        // Adversarial delivery of the late-scheduled request must advance
        // the clock past its delivery time (pre-fix: now became 3).
        sim.deliver_where(|_| true).expect("request in flight");
        assert!(
            sim.now() > request_deliver_at,
            "delivery at now={} precedes its own deliver_at={request_deliver_at}",
            sim.now()
        );

        // Drain the reply adversarially too and check the derived history:
        // the RESP must not precede the delivery that enabled it.
        sim.deliver_where(|_| true).expect("reply in flight");
        assert!(sim.is_complete(tx));
        let responded_at = sim.history().get(tx).unwrap().responded_at.unwrap();
        assert!(
            responded_at > request_deliver_at,
            "RESP at {responded_at} precedes the enabling delivery time {request_deliver_at}"
        );
    }

    /// Companion regression for `force_invoke`: a forced invocation is
    /// dispatched ahead of other queued work, but its INV timestamp must
    /// never regress below the invocation's planned time.
    #[test]
    fn forced_invocation_cannot_regress_below_its_planned_time() {
        let mut sim = toy_sim(FifoScheduler::new());
        let tx = sim.invoke_at(1_000, ClientId(0), TxSpec::read(vec![ObjectId(0)]));
        assert_eq!(sim.force_invoke(ClientId(0)), Some(tx));
        let invoked_at = sim.history().get(tx).unwrap().invoked_at;
        assert!(
            invoked_at > 1_000,
            "forced INV at {invoked_at} regressed below its planned time 1000"
        );
        sim.run_until_quiescent();
        assert!(sim.is_complete(tx));
    }

    /// Draining commits incrementally yields exactly the completed records
    /// of the final history, in RESP order, with identical enrichment —
    /// and the drain's `inv_floor` never runs ahead of a record a later
    /// drain returns.
    #[test]
    fn drain_commits_streams_the_history_in_resp_order() {
        // The toy client supports one outstanding transaction, so space the
        // invocations; the drain contract concerns completed records only.
        let mut sim = toy_sim(RandomScheduler::new(7)).with_trace_capacity(16);
        for i in 0..40u64 {
            sim.invoke_at(i * 40, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
        }
        let mut drained = Vec::new();
        let mut floor = 0u64;
        while !sim.is_quiescent() {
            sim.step();
            let drain = sim.drain_commits();
            for rec in &drain.records {
                assert!(
                    rec.invoked_at >= floor,
                    "record invoked at {} below the promised floor {floor}",
                    rec.invoked_at
                );
            }
            assert!(drain.inv_floor >= floor, "inv_floor regressed");
            floor = drain.inv_floor;
            drained.extend(drain.records);
        }
        assert!(sim.drain_commits().records.is_empty(), "nothing left after quiescence");
        // RESP order, exhaustive, and enriched identically to history().
        assert!(drained
            .windows(2)
            .all(|w| (w[0].responded_at, w[0].tx_id) <= (w[1].responded_at, w[1].tx_id)));
        let mut expected: Vec<_> = sim
            .history()
            .records
            .into_iter()
            .filter(|r| r.is_complete())
            .collect();
        expected.sort_by_key(|r| (r.responded_at, r.tx_id));
        assert!(expected.len() >= 30, "most transactions should complete");
        assert_eq!(format!("{drained:?}"), format!("{expected:?}"));
    }

    /// The recorded trace of an adversarially driven run has monotone
    /// (non-decreasing) action timestamps — the invariant the checkers'
    /// real-time precedence edges rely on.
    #[test]
    fn adversarially_driven_trace_timestamps_are_monotone() {
        let mut sim = toy_sim(LatencyScheduler::new(9, 1, 40));
        for i in 0..6u64 {
            sim.invoke_at(i * 7, ClientId(0), TxSpec::read(vec![ObjectId(0), ObjectId(1)]));
        }
        // Mix forced invocations, adversarial deliveries and normal steps.
        let mut flip = 0u64;
        while !sim.is_quiescent() {
            flip += 1;
            match flip % 3 {
                0 => {
                    sim.force_invoke(ClientId(0));
                }
                1 => {
                    sim.deliver_where(|p| p.dst == ProcessId::Client(ClientId(0)));
                }
                _ => {}
            }
            if sim.step() == StepOutcome::Quiescent {
                break;
            }
        }
        let times: Vec<u64> = sim.trace().actions().iter().map(|a| a.time).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "trace timestamps regressed: {times:?}"
        );
    }
}
