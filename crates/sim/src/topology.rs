//! Geo-topology: named sites, per-link latency distributions, and the
//! shard-count-independent [`TopologyScheduler`].
//!
//! The paper's read-latency results (and the geo-replicated Eiger lineage
//! it evaluates against) assume clients and replicas separated by
//! heterogeneous WAN/LAN links.  A [`Topology`] models that directly:
//! processes are placed at named sites, and each ordered site pair has a
//! [`LinkDist`] — a uniform range for well-behaved links, or a discretized
//! heavy tail for congested WAN paths.
//!
//! # Time units: µticks
//!
//! The topology layer measures latency in **site-ticks** and stamps
//! delivery times in **µticks** ([`TICK`] µticks = 1 site-tick).  The
//! sub-tick bits carry a per-message jitter hash confined to a
//! **per-destination band** (see below), so delivery keys for different
//! destinations can never collide — which is what lets every core
//! dispatch every event at exactly `key + 1`, the same timestamp the
//! serial run assigns (see the determinism contract).  Reports divide by
//! [`TICK`] to present site-tick latencies.
//!
//! # Determinism contract: shard-count independence
//!
//! [`LatencyScheduler`](crate::LatencyScheduler) draws from a draw-order
//! RNG: its n-th draw latches onto whichever send happens to be n-th on
//! that shard, so its latency schedule changes with the shard count.  The
//! [`TopologyScheduler`] is built so a history is a pure function of
//! `(deployment, topology, seed, invocation plan)` — the shard count
//! contributes nothing.  Four ingredients:
//!
//! 1. **Pure latencies.**  Each latency is derived with `splitmix64` —
//!    the same stateless-hash trick the fault engine's probabilistic
//!    gates use — keyed on the message's **shard-invariant coordinates**:
//!    source, destination, send tick, and the send's ordinal within its
//!    handler execution.  (Hashing the raw `MsgId` would only give
//!    decision-order independence: message ids are shard-strided, so the
//!    *same logical message* carries different ids at different shard
//!    counts.)  Every shard uses the **same seed**.
//! 2. **Collision-free keys across destinations.**  Delivery keys are
//!    aligned to site-tick slots, and the sub-tick offset lives in a
//!    jitter band private to the destination — so two messages can share
//!    a key only if they target the *same* process, which pins the tie to
//!    one core at every shard count.  (Equal keys at *different* cores
//!    would be unfixable: the serial engine's clock chains past the first
//!    dispatch, re-stamping the second handler one µtick later than the
//!    sharded engine does.)
//! 3. **Shard-invariant tie-breaks.**  Same-destination equal keys are
//!    resolved by `(sent_at, source, emission order)` instead of the
//!    shard-strided message id.
//! 4. **Strict key order** ([`crate::Scheduler::strict_key_order`]).  An
//!    invocation keyed before every pending delivery dispatches first, so
//!    a kickoff wave planned at quiescence (strictly increasing times
//!    within one site-tick of `now`) stamps `planned + 1` on every core —
//!    without this, a shard hosting two clients re-stamps the second
//!    invocation after whatever deliveries its pool accumulated.
//!
//! WAN-scale minimum latencies (> [`TICK`] µticks, far above the epoch
//! width) keep in-transit messages ahead of every shard's clock.  The
//! result — topology-scheduled histories bit-identical at any shard
//! count — is pinned by `tests/topology_scenarios.rs`.

use crate::message::MsgId;
use crate::pool::MessagePool;
use crate::scheduler::Scheduler;
use snow_core::{ClientId, ProcessId, ServerId, SystemConfig};
use std::sync::Arc;

/// µticks per site-tick: the scale factor between the topology layer's
/// human-readable latency unit and the engine's clock.
pub const TICK: u64 = 1024;

/// A per-link latency distribution, in site-ticks.  Draws are pure
/// functions of a 64-bit hash — no RNG state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDist {
    /// Uniform latency in `[min, max]` site-ticks.
    Uniform {
        /// Minimum latency (site-ticks; clamped to ≥ 1 at draw time).
        min: u64,
        /// Maximum latency (site-ticks).
        max: u64,
    },
    /// A discretized heavy tail: `base + U[0, jitter]` plus, with
    /// probability `2^-k`, an extra `step·2^(k-1)` (k = 1..=cap) — a
    /// log2-bucketed Pareto(α≈1) tail in integer arithmetic.  Models
    /// congested WAN paths where p99 ≫ p50.
    HeavyTail {
        /// Body latency floor (site-ticks).
        base: u64,
        /// Uniform body spread above the floor (site-ticks).
        jitter: u64,
        /// First tail bucket's extra latency; bucket k adds `step·2^(k-1)`.
        step: u64,
        /// Deepest tail bucket (caps the worst case at `step·2^(cap-1)`).
        cap: u32,
    },
}

impl LinkDist {
    /// Draws a latency in site-ticks from hash `h`.  Pure.
    pub fn draw(self, h: u64) -> u64 {
        match self {
            LinkDist::Uniform { min, max } => {
                let span = max.saturating_sub(min);
                min + if span > 0 { h % (span + 1) } else { 0 }
            }
            LinkDist::HeavyTail { base, jitter, step, cap } => {
                let body = base + h % (jitter + 1);
                // P(k trailing ones) = 2^-k: doubling the extra halves its
                // probability — the power-law signature.
                let k = (h >> 32).trailing_ones().min(cap);
                body + if k > 0 { step << (k - 1) } else { 0 }
            }
        }
    }
}

/// Named sites, per-link latency distributions, and process→site
/// placement.  Construct with [`Topology::for_config`] (every process
/// starts at site 0), then [`Topology::place_server`] /
/// [`Topology::place_client`] / [`Topology::set_link`] — or use a preset
/// ([`Topology::single_dc`], [`Topology::wan3`],
/// [`Topology::client_remote`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    sites: Vec<String>,
    /// Flattened `[from][to]` link matrix, including intra-site `[i][i]`.
    links: Vec<LinkDist>,
    server_sites: Vec<usize>,
    client_sites: Vec<usize>,
}

impl Topology {
    /// A topology over `config`'s processes: `site_names` sites, `intra`
    /// on every same-site link, `inter` on every cross-site link, and
    /// every process placed at site 0.
    ///
    /// # Panics
    /// Panics if `site_names` is empty.
    pub fn for_config(
        config: &SystemConfig,
        site_names: &[&str],
        intra: LinkDist,
        inter: LinkDist,
    ) -> Self {
        assert!(!site_names.is_empty(), "a topology needs at least one site");
        let n = site_names.len();
        let mut links = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                links.push(if from == to { intra } else { inter });
            }
        }
        Topology {
            sites: site_names.iter().map(|s| s.to_string()).collect(),
            links,
            server_sites: vec![0; config.num_servers as usize],
            client_sites: vec![0; config.num_clients() as usize],
        }
    }

    /// Single-DC preset: one site, every link `Uniform[1, 3]` site-ticks.
    pub fn single_dc(config: &SystemConfig) -> Self {
        Topology::for_config(config, &["dc"], LinkDist::Uniform { min: 1, max: 3 }, LinkDist::Uniform { min: 1, max: 3 })
    }

    /// Three-site WAN preset: servers and clients round-robined across
    /// `us-east` / `eu-west` / `ap-south`, LAN links inside a site, and
    /// heavy-tailed WAN links between them (farther pairs slower).
    pub fn wan3(config: &SystemConfig) -> Self {
        let mut t = Topology::for_config(
            config,
            &["us-east", "eu-west", "ap-south"],
            LinkDist::Uniform { min: 1, max: 3 },
            LinkDist::HeavyTail { base: 18, jitter: 6, step: 8, cap: 5 },
        );
        t.set_link(0, 2, LinkDist::HeavyTail { base: 40, jitter: 10, step: 12, cap: 5 });
        t.set_link(1, 2, LinkDist::HeavyTail { base: 28, jitter: 8, step: 10, cap: 5 });
        for s in 0..t.server_sites.len() {
            t.server_sites[s] = s % 3;
        }
        for c in 0..t.client_sites.len() {
            t.client_sites[c] = c % 3;
        }
        t
    }

    /// Client-remote preset: every server in one `dc` site, every client
    /// at a remote `edge` site behind a heavy-tailed WAN link — the
    /// geo-replicated reading-client setting of the paper's latency
    /// tables.
    pub fn client_remote(config: &SystemConfig) -> Self {
        let mut t = Topology::for_config(
            config,
            &["dc", "edge"],
            LinkDist::Uniform { min: 1, max: 3 },
            LinkDist::HeavyTail { base: 24, jitter: 8, step: 10, cap: 5 },
        );
        for c in 0..t.client_sites.len() {
            t.client_sites[c] = 1;
        }
        t
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Site names, in index order.
    pub fn site_names(&self) -> &[String] {
        &self.sites
    }

    /// The index of the site named `name`, if any.
    pub fn site_index(&self, name: &str) -> Option<usize> {
        self.sites.iter().position(|s| s == name)
    }

    /// Sets the link distribution between sites `a` and `b`, **both
    /// directions** (use the returned `&mut self` pattern for asymmetric
    /// links by calling twice via [`Topology::set_link_directed`]).
    pub fn set_link(&mut self, a: usize, b: usize, dist: LinkDist) {
        self.set_link_directed(a, b, dist);
        self.set_link_directed(b, a, dist);
    }

    /// Sets the `from → to` link distribution only.
    pub fn set_link_directed(&mut self, from: usize, to: usize, dist: LinkDist) {
        let n = self.sites.len();
        assert!(from < n && to < n, "site index out of range");
        self.links[from * n + to] = dist;
    }

    /// Places a server at a site.
    pub fn place_server(&mut self, server: ServerId, site: usize) {
        assert!(site < self.sites.len(), "site index out of range");
        self.server_sites[server.0 as usize] = site;
    }

    /// Places a client at a site.
    pub fn place_client(&mut self, client: ClientId, site: usize) {
        assert!(site < self.sites.len(), "site index out of range");
        self.client_sites[client.0 as usize] = site;
    }

    /// The site a process lives at.
    ///
    /// # Panics
    /// Panics if the process is outside the configuration the topology was
    /// built for.
    pub fn site_of(&self, id: ProcessId) -> usize {
        match id {
            ProcessId::Server(s) => self.server_sites[s.0 as usize],
            ProcessId::Client(c) => self.client_sites[c.0 as usize],
        }
    }

    /// The latency distribution of the `src → dst` link.
    pub fn link(&self, src: ProcessId, dst: ProcessId) -> LinkDist {
        let n = self.sites.len();
        self.links[self.site_of(src) * n + self.site_of(dst)]
    }

    /// Every process placed at `site`, servers first — the membership a
    /// site-wide [`Partition`](crate::fault::Partition) cuts.
    pub fn site_processes(&self, site: usize) -> Vec<ProcessId> {
        let servers = self
            .server_sites
            .iter()
            .enumerate()
            .filter(|&(_, s)| *s == site)
            .map(|(i, _)| ProcessId::Server(ServerId(i as u32)));
        let clients = self
            .client_sites
            .iter()
            .enumerate()
            .filter(|&(_, s)| *s == site)
            .map(|(i, _)| ProcessId::Client(ClientId(i as u32)));
        servers.chain(clients).collect()
    }

    /// Number of servers the topology places.
    pub fn num_servers(&self) -> usize {
        self.server_sites.len()
    }

    /// Number of clients the topology places.
    pub fn num_clients(&self) -> usize {
        self.client_sites.len()
    }

    /// Total number of placed processes (servers + clients).
    pub fn num_processes(&self) -> usize {
        self.server_sites.len() + self.client_sites.len()
    }

    /// Bitmasks of `(servers, clients)` placed at `site` — the compact
    /// membership an [`EndpointSel::Site`](crate::fault::EndpointSel)
    /// selector carries.
    ///
    /// # Panics
    /// Panics if any placed process id is ≥ 64 (the selector is a 64-bit
    /// mask; simulated deployments are far smaller).
    pub fn site_masks(&self, site: usize) -> (u64, u64) {
        assert!(
            self.server_sites.len() <= 64 && self.client_sites.len() <= 64,
            "site selectors support at most 64 servers and 64 clients"
        );
        let fold = |sites: &[usize]| {
            sites
                .iter()
                .enumerate()
                .filter(|&(_, s)| *s == site)
                .fold(0u64, |mask, (i, _)| mask | (1 << i))
        };
        (fold(&self.server_sites), fold(&self.client_sites))
    }
}

/// A [`Scheduler`] delivering messages in delivery-time order with
/// latencies drawn from a [`Topology`]'s link distributions — stamped in
/// µticks, hashed statelessly per message so the schedule is independent
/// of decision order *and shard count* (see the module docs).
#[derive(Debug, Clone)]
pub struct TopologyScheduler {
    topology: Arc<Topology>,
    seed: u64,
    /// Sub-tick jitter span per destination class: `TICK /
    /// num_processes`.  Each destination's delivery keys live in a
    /// disjoint residue band of the site-tick slot, so **two messages to
    /// different destinations can never share a delivery key** — the
    /// cross-core half of the collision-freedom argument (same-destination
    /// collisions land on one core and resolve by the tie-break in
    /// [`Scheduler::next`]).
    class_width: u64,
    /// `(src, send tick)` of the most recent `on_send_to`, with the next
    /// ordinal: sends inside one handler execution share `(src, tick)` and
    /// are numbered in emission order — a shard-invariant coordinate,
    /// unlike the shard-strided `MsgId`.
    handler: Option<(ProcessId, u64)>,
    ordinal: u64,
}

impl TopologyScheduler {
    /// Creates a scheduler over `topology` with the given latency seed.
    /// On the sharded engine every shard must receive the **same** seed —
    /// the draw is a pure per-message function, and sharing the seed is
    /// what makes the schedule shard-count-independent.
    ///
    /// # Panics
    /// Panics if the topology places more than [`TICK`] processes (each
    /// destination needs its own sub-tick jitter band).
    pub fn new(topology: Arc<Topology>, seed: u64) -> Self {
        let processes = topology.num_processes() as u64;
        assert!(
            (1..=TICK).contains(&processes),
            "TopologyScheduler supports 1..={TICK} processes, got {processes}"
        );
        let class_width = TICK / processes;
        TopologyScheduler { topology, seed, class_width, handler: None, ordinal: 0 }
    }

    /// The topology this scheduler draws from.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The destination's jitter-band index: servers first, then clients.
    fn class_of(&self, dst: ProcessId) -> u64 {
        match dst {
            ProcessId::Server(s) => s.0 as u64,
            ProcessId::Client(c) => self.topology.num_servers() as u64 + c.0 as u64,
        }
    }

    /// The pure per-message latency, in µticks.
    ///
    /// The link's site-tick draw (clamped to ≥ 1) sets the nominal
    /// arrival; the delivery key is the **next site-tick slot boundary**
    /// after it, plus a sub-tick offset inside the destination's jitter
    /// band.  Slot alignment is what makes the bands meaningful: the key
    /// modulo [`TICK`] is exactly `class·width + h % width`, so keys for
    /// different destinations differ in their residue and can never
    /// collide.  Every latency strictly clears one full site-tick — far
    /// above the parallel engine's epoch width, so no shard can outrun a
    /// message in transit, and far above any invocation-kickoff window.
    fn latency_microticks(&self, src: ProcessId, dst: ProcessId, sent_at: u64, ordinal: u64) -> u64 {
        let h = splitmix64(
            self.seed
                ^ pid_bits(src).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ pid_bits(dst).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ sent_at.wrapping_mul(0xD1B5_4A32_D192_ED03)
                ^ ordinal.wrapping_mul(0xFF51_AFD7_ED55_8CCD),
        );
        let ticks = self.topology.link(src, dst).draw(h).max(1);
        let slot = (sent_at / TICK + ticks + 1) * TICK;
        let offset = self.class_of(dst) * self.class_width + splitmix64(h) % self.class_width;
        slot + offset - sent_at
    }
}

impl<M> Scheduler<M> for TopologyScheduler {
    fn next(&mut self, pool: &mut MessagePool<M>, _now: u64) -> Option<MsgId> {
        let (key, candidate) = pool.peek_earliest()?;
        // Equal keys are same-destination by construction (disjoint
        // per-destination jitter bands), so the tie lives on one core at
        // every shard count — but the heap's `MsgId` tie-break is
        // shard-strided.  Re-break the tie on shard-invariant coordinates:
        // `(sent_at, src)` orders distinct handler executions, and within
        // one handler execution (same `sent_at`, same `src`) the relative
        // id order *is* emission order on both engines, so it is safe as
        // the final component.
        let mut best = candidate;
        let mut best_rank: Option<(u64, u64, u64)> = None;
        for p in pool.iter() {
            if p.delivery_key() != key {
                continue;
            }
            let rank = (p.sent_at, pid_bits(p.src), p.id.0);
            if best_rank.is_none_or(|r| rank < r) {
                best_rank = Some(rank);
                best = p.id;
            }
        }
        Some(best)
    }

    fn strict_key_order(&self) -> bool {
        true
    }

    fn on_send_to(&mut self, src: ProcessId, dst: ProcessId, _id: MsgId, sent_at: u64) -> Option<u64> {
        // Number this send within its handler execution.  A process
        // dispatches at most once per tick (the engine clock strictly
        // increases per dispatch), so `(src, sent_at)` identifies the
        // handler, and `apply_effects` emits its sends contiguously.
        let ordinal = match self.handler {
            Some((p, t)) if p == src && t == sent_at => self.ordinal + 1,
            _ => 0,
        };
        self.handler = Some((src, sent_at));
        self.ordinal = ordinal;
        Some(sent_at + self.latency_microticks(src, dst, sent_at, ordinal))
    }
}

/// Encodes a process id into disjoint 64-bit ranges for hashing.
fn pid_bits(id: ProcessId) -> u64 {
    match id {
        ProcessId::Server(s) => (1 << 32) | s.0 as u64,
        ProcessId::Client(c) => (2 << 32) | c.0 as u64,
    }
}

/// SplitMix64 — the stateless mixer behind the per-message latency hash
/// (the fault engine's probabilistic gates use the same construction).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::PendingMessage;

    #[derive(Debug, Clone)]
    struct M;
    impl crate::message::SimMessage for M {}

    const S0: ProcessId = ProcessId::Server(ServerId(0));
    const S1: ProcessId = ProcessId::Server(ServerId(1));
    const C0: ProcessId = ProcessId::Client(ClientId(0));

    fn config() -> SystemConfig {
        SystemConfig::mwmr(4, 2, 2)
    }

    #[test]
    fn uniform_draws_stay_in_range() {
        let d = LinkDist::Uniform { min: 3, max: 9 };
        for h in 0..500u64 {
            let v = d.draw(splitmix64(h));
            assert!((3..=9).contains(&v), "{v}");
        }
        assert_eq!(LinkDist::Uniform { min: 5, max: 5 }.draw(77), 5);
    }

    #[test]
    fn heavy_tail_has_a_body_and_a_rare_deep_tail() {
        let d = LinkDist::HeavyTail { base: 10, jitter: 4, step: 8, cap: 5 };
        let draws: Vec<u64> = (0..4000u64).map(|h| d.draw(splitmix64(h))).collect();
        let body = draws.iter().filter(|&&v| v <= 14).count();
        let tail = draws.iter().filter(|&&v| v > 14).count();
        // Half the hashes have k ≥ 1 (one trailing one), so body ≈ tail.
        assert!(body > 1500 && tail > 1500, "body={body} tail={tail}");
        // The deep tail is reachable but rare: k = 5 adds 8·16 = 128.
        let deep = draws.iter().filter(|&&v| v >= 138).count();
        assert!(deep > 0 && deep < 400, "deep={deep}");
        // Capped: nothing beyond base + jitter + step·2^(cap-1).
        assert!(draws.iter().all(|&v| v <= 10 + 4 + 128));
    }

    #[test]
    fn placement_and_links_resolve_per_site() {
        let mut t = Topology::for_config(
            &config(),
            &["a", "b"],
            LinkDist::Uniform { min: 1, max: 2 },
            LinkDist::Uniform { min: 20, max: 30 },
        );
        t.place_server(ServerId(1), 1);
        t.place_client(ClientId(0), 1);
        assert_eq!(t.site_of(S0), 0);
        assert_eq!(t.site_of(S1), 1);
        assert_eq!(t.site_of(C0), 1);
        assert_eq!(t.link(S0, S1), LinkDist::Uniform { min: 20, max: 30 });
        assert_eq!(t.link(C0, S1), LinkDist::Uniform { min: 1, max: 2 });
        assert_eq!(t.site_index("b"), Some(1));
        assert_eq!(t.site_index("zz"), None);
        assert_eq!(t.num_sites(), 2);
        assert!(t.site_processes(1).contains(&S1));
        assert!(t.site_processes(1).contains(&C0));
        assert!(!t.site_processes(0).contains(&S1));
        let (servers, clients) = t.site_masks(1);
        assert_eq!(servers, 0b10);
        assert_eq!(clients, 0b1);
    }

    #[test]
    fn presets_cover_every_process() {
        let config = config();
        for t in [
            Topology::single_dc(&config),
            Topology::wan3(&config),
            Topology::client_remote(&config),
        ] {
            for s in 0..config.num_servers {
                assert!(t.site_of(ProcessId::Server(ServerId(s))) < t.num_sites());
            }
            for c in 0..config.num_clients() {
                assert!(t.site_of(ProcessId::Client(ClientId(c))) < t.num_sites());
            }
        }
        let remote = Topology::client_remote(&config);
        assert_eq!(remote.site_of(S0), remote.site_index("dc").unwrap());
        assert_eq!(remote.site_of(C0), remote.site_index("edge").unwrap());
    }

    #[test]
    fn latency_draws_are_pure_and_order_independent() {
        let topo = Arc::new(Topology::client_remote(&config()));
        let mut a = TopologyScheduler::new(topo.clone(), 9);
        let mut b = TopologyScheduler::new(topo, 9);
        // Two handler executions, interleaved differently across the two
        // schedulers (as different shard counts would): per-message stamps
        // are identical because the draw is keyed on shard-invariant
        // coordinates, not on call order.
        let x0 = Scheduler::<M>::on_send_to(&mut a, C0, S0, MsgId(0), 100);
        let x1 = Scheduler::<M>::on_send_to(&mut a, C0, S1, MsgId(1), 100);
        let y0 = Scheduler::<M>::on_send_to(&mut a, S0, C0, MsgId(2), 5000);

        let y0b = Scheduler::<M>::on_send_to(&mut b, S0, C0, MsgId(7), 5000);
        let x0b = Scheduler::<M>::on_send_to(&mut b, C0, S0, MsgId(11), 100);
        let x1b = Scheduler::<M>::on_send_to(&mut b, C0, S1, MsgId(12), 100);
        assert_eq!(x0, x0b);
        assert_eq!(x1, x1b);
        assert_eq!(y0, y0b);
        // Distinct sends from one handler draw distinct latencies.
        assert_ne!(x0, x1);
    }

    #[test]
    fn latencies_scale_with_the_link_and_clear_the_minimum() {
        let topo = Arc::new(Topology::client_remote(&config()));
        let mut s = TopologyScheduler::new(topo, 4);
        // Client → server crosses the WAN link: > base (24) site-ticks
        // nominal, at most base + jitter (8) + tail (10·2^4) + 2 slots.
        let wan = Scheduler::<M>::on_send_to(&mut s, C0, S0, MsgId(0), 0).unwrap();
        assert!(wan > 24 * TICK, "wan latency {wan}");
        assert!(wan < (24 + 8 + 160 + 2) * TICK, "wan latency {wan}");
        // Server → server stays inside the DC: 1..=3 site-ticks nominal,
        // plus the slot round-up and sub-tick band offset.
        let lan = Scheduler::<M>::on_send_to(&mut s, S0, S1, MsgId(1), 0).unwrap();
        assert!((TICK..5 * TICK).contains(&lan), "lan latency {lan}");
        // Every latency strictly clears one full site-tick — above the
        // epoch width, which keeps in-transit messages ahead of every
        // shard, and above any invocation-kickoff window.
        assert!(lan > TICK && wan > TICK);
    }

    #[test]
    fn delivery_keys_never_collide_across_destinations() {
        let config = SystemConfig::mwmr(4, 2, 4);
        let topo = Arc::new(Topology::wan3(&config));
        let mut s = TopologyScheduler::new(topo, 0xC0FFEE);
        // Many senders, many send times, every destination: keys for
        // different destinations must differ even when slots coincide,
        // because each destination's sub-tick offset lives in its own
        // band.
        let mut seen: std::collections::BTreeMap<u64, ProcessId> = std::collections::BTreeMap::new();
        let mut id = 0u64;
        for sent_at in [0u64, 7, 1024, 4096, 4100] {
            for src in 0..6u32 {
                let src = ProcessId::Client(ClientId(src));
                for dst in 0..4u32 {
                    let dst = ProcessId::Server(ServerId(dst));
                    let key =
                        Scheduler::<M>::on_send_to(&mut s, src, dst, MsgId(id), sent_at).unwrap();
                    id += 1;
                    if let Some(prev) = seen.insert(key, dst) {
                        assert_eq!(prev, dst, "cross-destination key collision at {key}");
                    }
                }
            }
        }
        // Band arithmetic: the key's sub-tick residue identifies the
        // destination class.
        let width = TICK / 10; // 4 servers + 6 clients
        for (key, dst) in seen {
            let class = (key % TICK) / width;
            assert_eq!(class, match dst {
                ProcessId::Server(s) => s.0 as u64,
                ProcessId::Client(c) => 4 + c.0 as u64,
            });
        }
    }

    #[test]
    fn equal_key_ties_break_on_shard_invariant_coordinates() {
        let topo = Arc::new(Topology::single_dc(&config()));
        let mut s = TopologyScheduler::new(topo, 1);
        let mut pool = MessagePool::new();
        // Three same-destination messages stamped with the same delivery
        // key, inserted with ids in the "wrong" order (as a shard-strided
        // id assignment could produce): the pick must follow
        // `(sent_at, src, id)`, not id alone.
        for (id, src, sent_at) in [(9u64, S1, 40u64), (2, S0, 50), (5, S0, 40)] {
            pool.insert(PendingMessage {
                id: MsgId(id),
                src,
                dst: C0,
                msg: M,
                sent_at,
                parent: None,
                deliver_at: Some(7000),
            });
        }
        let mut order = Vec::new();
        while let Some(id) = Scheduler::<M>::next(&mut s, &mut pool, 0) {
            pool.remove(id).unwrap();
            order.push(id.0);
        }
        // sent_at 40 before 50; at 40, server 0 before server 1.
        assert_eq!(order, vec![5, 9, 2]);
    }

    #[test]
    fn strict_key_order_is_declared() {
        let topo = Arc::new(Topology::single_dc(&config()));
        let s = TopologyScheduler::new(topo, 0);
        assert!(Scheduler::<M>::strict_key_order(&s));
        assert!(!Scheduler::<M>::strict_key_order(&crate::FifoScheduler::new()));
    }

    #[test]
    fn scheduler_delivers_in_key_order() {
        let topo = Arc::new(Topology::single_dc(&config()));
        let mut s = TopologyScheduler::new(topo, 1);
        let mut pool = MessagePool::new();
        for (id, key) in [(0u64, 3000u64), (1, 1200), (2, 2100)] {
            pool.insert(PendingMessage {
                id: MsgId(id),
                src: C0,
                dst: S0,
                msg: M,
                sent_at: 0,
                parent: None,
                deliver_at: Some(key),
            });
        }
        let mut order = Vec::new();
        while let Some(id) = Scheduler::<M>::next(&mut s, &mut pool, 0) {
            pool.remove(id).unwrap();
            order.push(id.0);
        }
        assert_eq!(order, vec![1, 2, 0]);
    }
}
