//! The **single dispatch core** every simulator substrate runs on.
//!
//! [`DispatchCore`] owns one partition of a deployment's processes plus the
//! indexed structures the step loop needs — a [`MessagePool`] delivery heap,
//! a `(at, TxId)`-keyed invocation heap, a [`Scheduler`] instance, a
//! [`Trace`] and the per-transaction records — and makes **every dispatch
//! decision in the workspace**: invocation-vs-delivery choice, clock
//! advance, handler execution, effect application, step accounting, and the
//! adversarial driving entry points ([`Simulation::deliver_where`],
//! [`Simulation::force_invoke`]).
//!
//! The serial [`Simulation`] wraps exactly one core (`index 0, stride 1`,
//! so every process is local and the cross-shard outbox stays empty); the
//! sharded [`crate::ParallelSimulation`] instantiates one core per shard
//! and exchanges the cores' outboxes at its epoch barrier.  Historically
//! the two engines carried hand-mirrored copies of this logic ("change
//! dispatch semantics in both places"); the mirror is gone — `scripts/
//! ci.sh` enforces that this module remains the only definition site of
//! the dispatch primitives (`fn step`, `fn run_epoch`,
//! `fn dispatch_invocation`, `fn deliver`, `fn apply_effects`, …).
//!
//! # The clock invariant
//!
//! All clock movement funnels through [`DispatchCore::advance_past`]:
//! dispatching an event advances `now` to `max(now, event_time) + 1`, so
//! **no event is ever dispatched at a clock earlier than its own
//! timestamp** — a delivery never happens before its scheduler-stamped
//! `deliver_at`, a (possibly forced) invocation never before its planned
//! `at`.  The paper's SNOW arguments and the strict-serializability
//! checkers derive real-time precedence edges from these timestamps, so a
//! violation silently widens or inverts the intervals they reason about.
//! The pre-unification `deliver_where`/`force_invoke` paths advanced
//! `now += 1` without the clamp, letting adversarial schedules (the
//! Figs. 3–5 style constructions) record a RESP *before* the delivery
//! that caused it; the clamp fixes that, and debug assertions downstream
//! of it — the delivery-timestamp check in `DispatchCore::deliver` and
//! the monotonicity check in [`Trace::record`] — keep the invariant
//! audited.

use crate::fault::{CrashPolicy, FaultState, SendVerdict};
use crate::message::{MsgId, PendingMessage, SimMessage as _};
use crate::pool::MessagePool;
use crate::parallel::shard_of;
use crate::scheduler::Scheduler;
use crate::sim::Simulation;
use crate::trace::{ActionKind, CausalEnvelope, Trace};
use snow_core::{
    ClientId, Effects, History, Process, ProcessId, TxId, TxKind, TxOutcome, TxRecord, TxSpec,
};
use snow_obs::{NullSink, ObsEvent, TraceSink};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// What a single simulation step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// An invocation was dispatched to a client.
    Invoked(TxId),
    /// A message was delivered.
    Delivered(MsgId),
    /// Nothing left to do: no pending messages and no future invocations.
    Quiescent,
}

/// A scheduled invocation, ordered by `(at, tx)` for the invocation queue.
#[derive(Debug, Clone)]
pub(crate) struct QueuedInvocation {
    pub(crate) at: u64,
    pub(crate) tx: TxId,
    pub(crate) client: ClientId,
    pub(crate) spec: TxSpec,
}

impl PartialEq for QueuedInvocation {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.tx) == (other.at, other.tx)
    }
}
impl Eq for QueuedInvocation {}
impl PartialOrd for QueuedInvocation {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedInvocation {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (at, tx) on top.
        (other.at, other.tx).cmp(&(self.at, self.tx))
    }
}

/// A cross-shard message in transit, carrying its causal metadata.
pub(crate) struct Transit<M> {
    pub(crate) msg: PendingMessage<M>,
    pub(crate) causality: Option<CausalEnvelope>,
}

impl<M> Transit<M> {
    /// The delivery-queue key the destination pool will use
    /// ([`PendingMessage::delivery_key`] — one rule, shared with
    /// [`MessagePool`]'s heap, so routing order and pool order agree).
    pub(crate) fn key(&self) -> u64 {
        self.msg.delivery_key()
    }
}

/// One dispatch core: a self-contained engine over a subset (possibly all)
/// of a deployment's processes.  See the module docs for how the serial
/// and sharded substrates wrap it.
///
/// `O` is the observability sink the core emits [`ObsEvent`]s into.  The
/// default [`NullSink`] has `ENABLED = false`, so every emission site —
/// written `if O::ENABLED { … }` — monomorphizes away entirely: an
/// unobserved core is the pre-observability core, instruction for
/// instruction.  All stamps are **virtual ticks** (`self.now`); the core
/// never reads a wall clock.
pub(crate) struct DispatchCore<P: Process, S, O: TraceSink = NullSink> {
    /// Which shard this core is (0 for the serial engine).
    pub(crate) index: usize,
    /// Total number of shards; message ids are strided by it (the serial
    /// engine's stride of 1 assigns densely, exactly as it always did).
    pub(crate) stride: u64,
    pub(crate) processes: BTreeMap<ProcessId, P>,
    pub(crate) pool: MessagePool<P::Msg>,
    pub(crate) invocations: BinaryHeap<QueuedInvocation>,
    pub(crate) scheduler: S,
    pub(crate) trace: Trace,
    pub(crate) records: BTreeMap<TxId, TxRecord>,
    pub(crate) now: u64,
    pub(crate) next_msg: u64,
    pub(crate) steps: u64,
    pub(crate) max_steps: u64,
    /// Commit-log position of the last [`DispatchCore::new_commits`] drain.
    pub(crate) commit_cursor: u64,
    /// `(invoked_at, tx)` of every invoked-but-not-responded transaction —
    /// the first entry is the earliest in-flight invocation, which bounds
    /// [`DispatchCore::inv_floor`] in O(log n) per update instead of an
    /// O(records) scan per drain.
    pub(crate) in_flight: BTreeSet<(u64, TxId)>,
    /// Sends addressed to processes of another core, buffered for the
    /// epoch exchange.  Always empty at stride 1 (everything is local).
    pub(crate) outbox: Vec<Transit<P::Msg>>,
    /// Observability sink (virtual-time events only; `NullSink` by
    /// default, which compiles the emission sites away).
    pub(crate) sink: O,
    /// Fault engine state (`None` = fault-free: every fault check is
    /// guarded by `is_some()`, so an unfaulted core executes the exact
    /// pre-fault-engine path and histories stay byte-identical).
    pub(crate) faults: Option<FaultState<P>>,
}

impl<P, S, O> DispatchCore<P, S, O>
where
    P: Process,
    S: Scheduler<P::Msg>,
    O: TraceSink,
{
    pub(crate) fn new(index: usize, stride: u64, scheduler: S) -> Self
    where
        O: Default,
    {
        DispatchCore {
            index,
            stride,
            processes: BTreeMap::new(),
            pool: MessagePool::new(),
            invocations: BinaryHeap::new(),
            scheduler,
            trace: Trace::new(),
            records: BTreeMap::new(),
            now: 0,
            next_msg: index as u64,
            steps: 0,
            max_steps: 1_000_000,
            commit_cursor: 0,
            in_flight: BTreeSet::new(),
            outbox: Vec::new(),
            sink: O::default(),
            faults: None,
        }
    }

    /// Rebuilds this core around a different observability sink (type
    /// changing, so the emission sites re-monomorphize for `O2`).
    pub(crate) fn with_sink<O2: TraceSink>(self, sink: O2) -> DispatchCore<P, S, O2> {
        DispatchCore {
            index: self.index,
            stride: self.stride,
            processes: self.processes,
            pool: self.pool,
            invocations: self.invocations,
            scheduler: self.scheduler,
            trace: self.trace,
            records: self.records,
            now: self.now,
            next_msg: self.next_msg,
            steps: self.steps,
            max_steps: self.max_steps,
            commit_cursor: self.commit_cursor,
            in_flight: self.in_flight,
            outbox: self.outbox,
            sink,
            faults: self.faults,
        }
    }

    /// Yields and clears the sink's collected events.
    pub(crate) fn drain_events(&mut self) -> Vec<ObsEvent> {
        self.sink.drain()
    }

    /// Observability note from the sharded engine's worker loop: this core
    /// just crossed its epoch barrier, having executed `steps` steps under
    /// `watermark`.  Called only on the multi-shard path (never by the
    /// serial engine or the 1-shard inline fast path), so 1-shard event
    /// streams stay byte-identical to serial ones.
    pub(crate) fn note_epoch(&mut self, epoch: u64, watermark: u64, steps: u64) {
        if O::ENABLED {
            self.sink.emit(ObsEvent::EpochBarrierCrossed {
                at: self.now,
                epoch,
                watermark,
                steps,
            });
        }
    }

    /// Registers a process.  Panics if a process with the same id exists.
    pub(crate) fn add_process(&mut self, process: P) {
        let id = process.id();
        let prev = self.processes.insert(id, process);
        assert!(prev.is_none(), "duplicate process id {id}");
    }

    pub(crate) fn is_local(&self, id: ProcessId) -> bool {
        shard_of(id, self.stride as usize) == self.index
    }

    pub(crate) fn is_complete(&self, tx: TxId) -> bool {
        self.records.get(&tx).map(|r| r.is_complete()).unwrap_or(false)
    }

    /// True if this core has nothing left to do (nothing pending, nothing
    /// planned, nothing awaiting the exchange).
    pub(crate) fn is_quiescent(&self) -> bool {
        self.pool.is_empty() && self.invocations.is_empty() && self.outbox.is_empty()
    }

    /// Folds a routed cross-shard message into the local pool and trace.
    pub(crate) fn accept(&mut self, transit: Transit<P::Msg>) {
        if let Some(causality) = transit.causality {
            self.trace.import_envelope(transit.msg.id, causality);
        }
        self.pool.insert(transit.msg);
    }

    /// The earliest virtual time at which this core could take a step
    /// under the dispatch rules, or `None` if it has no work.  Exactly two
    /// dispatch cases exist: a due invocation (planned time reached, or
    /// nothing pending to deliver), else the earliest pending delivery (a
    /// non-empty pool always has a live queue entry).
    pub(crate) fn next_processable(&mut self) -> Option<u64> {
        if let Some(inv) = self.invocations.peek() {
            if inv.at <= self.now || self.pool.is_empty() {
                return Some(inv.at);
            }
        }
        let earliest = self.pool.peek_earliest().map(|(key, _)| key);
        // Strict-key-order schedulers dispatch an invocation ahead of any
        // later-keyed delivery (see [`Scheduler::strict_key_order`]).
        if self.scheduler.strict_key_order() {
            if let (Some(inv), Some(key)) = (self.invocations.peek(), earliest) {
                if inv.at < key {
                    return Some(inv.at);
                }
            }
        }
        earliest
    }

    fn count_step(&mut self) {
        self.steps += 1;
        assert!(
            self.steps <= self.max_steps,
            "engine (shard {}) exceeded {} steps; likely livelock",
            self.index,
            self.max_steps
        );
    }

    /// The one clock rule: dispatching an event stamped `event_at`
    /// advances `now` to `max(now, event_at) + 1`.  Every `now` mutation
    /// in the workspace goes through here, so the invariant *an event is
    /// never dispatched at a clock earlier than its own timestamp* holds
    /// by construction.  A path that bypassed the clamp would trip the
    /// debug assertions downstream of it: the timestamp check in
    /// [`DispatchCore::deliver`] and the monotonicity check in
    /// [`Trace::record`].
    fn advance_past(&mut self, event_at: u64) {
        self.now = self.now.max(event_at) + 1;
    }

    /// One dispatch decision under `watermark`: a due invocation (planned
    /// time reached, or nothing pending to deliver) wins over a delivery;
    /// deliveries are chosen by the scheduler, which may pick *any* live
    /// message, not just ones keyed inside the watermark — the watermark
    /// only gates *whether* a dispatch happens (the due invocation or the
    /// earliest pending delivery must fall below it).  Returns `None`
    /// without counting a step if nothing below the watermark is
    /// dispatchable.  The serial engine passes `u64::MAX`.
    fn try_dispatch(&mut self, watermark: u64) -> Option<StepOutcome> {
        let strict = self.scheduler.strict_key_order();
        let earliest_key = self.pool.peek_earliest().map(|(key, _)| key);
        let due = self
            .invocations
            .peek()
            .map(|inv| {
                let reached = inv.at <= self.now
                    || earliest_key.is_none()
                    || (strict && earliest_key.is_some_and(|key| inv.at < key));
                reached && inv.at < watermark
            })
            .unwrap_or(false);
        if due {
            let inv = self.invocations.pop().expect("peeked invocation");
            self.count_step();
            self.advance_past(inv.at);
            self.dispatch_invocation(inv.tx, inv.client, inv.spec);
            return Some(StepOutcome::Invoked(inv.tx));
        }
        let deliverable = self
            .pool
            .peek_earliest()
            .map(|(key, _)| key < watermark)
            .unwrap_or(false);
        if !deliverable {
            return None;
        }
        match self.scheduler.next(&mut self.pool, self.now) {
            Some(id) => {
                self.count_step();
                let msg = self
                    .pool
                    .remove(id)
                    .expect("scheduler must choose a live message");
                self.advance_past(msg.deliver_at.unwrap_or(self.now));
                if let Some(msg) = self.crash_intercept(msg) {
                    self.deliver(msg);
                }
                Some(StepOutcome::Delivered(id))
            }
            None => None,
        }
    }

    /// One serial step (the historical [`Simulation::step`] contract): an
    /// idle probe — nothing dispatchable — still counts a step.
    pub(crate) fn step(&mut self) -> StepOutcome {
        match self.try_dispatch(u64::MAX) {
            Some(outcome) => outcome,
            None => {
                self.count_step();
                StepOutcome::Quiescent
            }
        }
    }

    /// Drains local events by the dispatch rules until neither a due
    /// invocation nor the earliest pending delivery falls below
    /// `watermark`, the core has nothing left, or (if watching) **any**
    /// watched transaction completes.  Returns steps executed.
    pub(crate) fn run_epoch(&mut self, watermark: u64, watch: &[TxId]) -> u64 {
        let start = self.steps;
        loop {
            if watch.iter().any(|&tx| self.is_complete(tx)) {
                break;
            }
            if self.try_dispatch(watermark).is_none() {
                break;
            }
        }
        self.steps - start
    }

    /// Manual (adversarial) delivery of the first pending message (in send
    /// order) matching `pred`, bypassing the scheduler — see
    /// [`Simulation::deliver_where`].  The clock clamp is the same as a
    /// scheduled delivery's: adversarial order, not adversarial time
    /// travel.
    pub(crate) fn deliver_where<F>(&mut self, pred: F) -> Option<MsgId>
    where
        F: Fn(&PendingMessage<P::Msg>) -> bool,
    {
        let id = self.pool.iter().find(|p| pred(p)).map(|p| p.id)?;
        let msg = self.pool.remove(id).expect("matched message is live");
        self.advance_past(msg.deliver_at.unwrap_or(self.now));
        if let Some(msg) = self.crash_intercept(msg) {
            self.deliver(msg);
        }
        Some(id)
    }

    /// Manual (adversarial) dispatch of `client`'s next planned invocation
    /// — see [`Simulation::force_invoke`].  The clock clamp matches the
    /// scheduled invocation rule: the INV is recorded no earlier than its
    /// planned time.
    pub(crate) fn force_invoke(&mut self, client: ClientId) -> Option<TxId> {
        // "Next" = smallest (at, tx) among that client's plans, matching the
        // engine's dispatch order.  Heap iteration is unordered, so take the
        // minimum explicitly; this adversarial path may be O(n).
        let target = self
            .invocations
            .iter()
            .filter(|inv| inv.client == client)
            .max() // QueuedInvocation's Ord is reversed: max = earliest
            .cloned()?;
        self.invocations.retain(|inv| inv.tx != target.tx);
        self.advance_past(target.at);
        self.dispatch_invocation(target.tx, target.client, target.spec);
        Some(target.tx)
    }

    fn dispatch_invocation(&mut self, tx: TxId, client: ClientId, spec: TxSpec) {
        let pid = ProcessId::Client(client);
        self.trace.record(
            self.now,
            pid,
            ActionKind::Invoke { tx, kind: spec.kind() },
        );
        self.records
            .insert(tx, TxRecord::invoked(tx, client, spec.clone(), self.now));
        self.in_flight.insert((self.now, tx));
        if O::ENABLED {
            self.sink.emit(ObsEvent::InvocationDispatched { at: self.now, tx, client });
        }
        let mut effects = Effects::new(self.now);
        let process = self
            .processes
            .get_mut(&pid)
            .unwrap_or_else(|| panic!("invocation for unknown process {pid}"));
        process.on_invoke(tx, spec, &mut effects);
        self.apply_effects(pid, None, effects);
    }

    fn deliver(&mut self, msg: PendingMessage<P::Msg>) {
        // Delivery must happen strictly after the message's own timestamp.
        // `sent_at` is only comparable to `now` on a single-core clock
        // (shards advance their virtual clocks independently).
        debug_assert!(
            msg.deliver_at.is_none_or(|at| at < self.now)
                && (self.stride > 1 || msg.sent_at < self.now),
            "message {} delivered before its own timestamp (sent_at {}, deliver_at {:?}, now {})",
            msg.id,
            msg.sent_at,
            msg.deliver_at,
            self.now
        );
        let info = msg.msg.info();
        self.trace.record(
            self.now,
            msg.dst,
            ActionKind::Recv { msg: msg.id, from: msg.src, info },
        );
        if O::ENABLED {
            self.sink.emit(ObsEvent::MessageDelivered {
                at: self.now,
                msg: msg.id.0,
                kind: info.kind,
                tx: info.tx,
                src: msg.src,
                dst: msg.dst,
                queue_depth: self.pool.len() as u32,
            });
        }
        let mut effects = Effects::new(self.now);
        let process = self
            .processes
            .get_mut(&msg.dst)
            .unwrap_or_else(|| panic!("message to unknown process {}", msg.dst));
        process.on_message(msg.src, msg.msg, &mut effects);
        self.apply_effects(msg.dst, Some(msg.id), effects);
        // Bounded mode: this core only needs a delivered message's causal
        // metadata for aggregates of transactions *invoked here* (the
        // records map is exactly that set) — RESP-time pruning covers
        // those.  Anything else would leak until the run ends, since no
        // local RESP will ever drop it; prune it now that the handler's
        // sends have folded its chain.  (At stride 1 every transaction is
        // invoked here, so this never fires on the serial engine.)
        if self.stride > 1
            && info.tx.map(|tx| !self.records.contains_key(&tx)).unwrap_or(false)
        {
            self.trace.prune_meta(msg.id);
        }
    }

    fn apply_effects(&mut self, at: ProcessId, parent: Option<MsgId>, effects: Effects<P::Msg>) {
        let (sends, responses) = effects.into_parts();
        for (to, m) in sends {
            let id = MsgId(self.next_msg);
            self.next_msg += self.stride;
            let info = m.info();
            self.trace.record(
                self.now,
                at,
                ActionKind::Send { msg: id, to, parent, info },
            );
            // The scheduler always sees the send (its latency/RNG draw
            // sequence is part of the determinism contract), then the fault
            // schedule gets the last word on whether and when the message
            // travels.  `send_verdict` is a pure function of
            // `(schedule, src, dst, sent_at, id)`, so verdicts are
            // independent of decision order across shards.
            let deliver_at = self.scheduler.on_send_to(at, to, id, self.now);
            let verdict = match self.faults.as_ref() {
                Some(f) => f.schedule.send_verdict(at, to, self.now, id),
                None => SendVerdict::default(),
            };
            if self.faults.is_some() {
                self.note_partitions();
            }
            if verdict.dropped {
                // Sent, never inserted: the trace keeps the Send record (a
                // drop is an event of the run), but the causal meta can
                // never be walked again.
                if O::ENABLED {
                    self.sink.emit(ObsEvent::MessageSent {
                        at: self.now,
                        msg: id.0,
                        kind: info.kind,
                        tx: info.tx,
                        src: at,
                        dst: to,
                        queue_depth: self.pool.len() as u32,
                        cross_shard: !self.is_local(to),
                    });
                    self.sink.emit(ObsEvent::MessageDropped {
                        at: self.now,
                        msg: id.0,
                        src: at,
                        dst: to,
                    });
                }
                self.trace.prune_meta(id);
                continue;
            }
            let deliver_at = if verdict.extra_delay > 0 || verdict.hold_until.is_some() {
                let base = deliver_at.unwrap_or(self.now).saturating_add(verdict.extra_delay);
                Some(base.max(verdict.hold_until.unwrap_or(0)))
            } else {
                deliver_at
            };
            let dup = verdict.duplicate.then(|| m.clone());
            let pending = PendingMessage {
                id,
                src: at,
                dst: to,
                msg: m,
                sent_at: self.now,
                parent,
                deliver_at,
            };
            let local = self.is_local(to);
            if local {
                self.pool.insert(pending);
            } else {
                let causality = self.trace.export_envelope(id);
                // Bounded mode: the local meta of a departed message can
                // never be walked again on this core — only its envelope
                // travels on.
                self.trace.prune_meta(id);
                self.outbox.push(Transit { msg: pending, causality });
            }
            if O::ENABLED {
                self.sink.emit(ObsEvent::MessageSent {
                    at: self.now,
                    msg: id.0,
                    kind: info.kind,
                    tx: info.tx,
                    src: at,
                    dst: to,
                    queue_depth: self.pool.len() as u32,
                    cross_shard: !local,
                });
            }
            if let Some(copy) = dup {
                // The duplicate is a first-class message: its own
                // (shard-strided) id, its own Send record, its own
                // scheduler draw.  It is not re-evaluated against the fault
                // schedule (no duplicate storms of duplicates).
                let dup_id = MsgId(self.next_msg);
                self.next_msg += self.stride;
                self.trace.record(
                    self.now,
                    at,
                    ActionKind::Send { msg: dup_id, to, parent, info },
                );
                let dup_deliver = self.scheduler.on_send_to(at, to, dup_id, self.now);
                let dup_pending = PendingMessage {
                    id: dup_id,
                    src: at,
                    dst: to,
                    msg: copy,
                    sent_at: self.now,
                    parent,
                    deliver_at: dup_deliver,
                };
                if local {
                    self.pool.insert(dup_pending);
                } else {
                    let causality = self.trace.export_envelope(dup_id);
                    self.trace.prune_meta(dup_id);
                    self.outbox.push(Transit { msg: dup_pending, causality });
                }
                if O::ENABLED {
                    self.sink.emit(ObsEvent::MessageSent {
                        at: self.now,
                        msg: dup_id.0,
                        kind: info.kind,
                        tx: info.tx,
                        src: at,
                        dst: to,
                        queue_depth: self.pool.len() as u32,
                        cross_shard: !local,
                    });
                    self.sink.emit(ObsEvent::MessageDuplicated {
                        at: self.now,
                        original: id.0,
                        duplicate: dup_id.0,
                        src: at,
                        dst: to,
                    });
                }
            }
        }
        for (tx, outcome) in responses {
            self.trace.record(self.now, at, ActionKind::Respond { tx });
            if let Some(rec) = self.records.get_mut(&tx) {
                let invoked_at = rec.invoked_at;
                rec.responded_at = Some(self.now);
                rec.outcome = Some(outcome);
                self.in_flight.remove(&(invoked_at, tx));
                if O::ENABLED {
                    self.sink.emit(ObsEvent::TxCommitted {
                        at: self.now,
                        tx,
                        client: rec.client,
                        invoked_at,
                    });
                }
            }
        }
    }

    /// Clones one record enriched with the core's trace aggregates (rounds,
    /// read instrumentation) and a caller-supplied C2C count (the sharded
    /// engine sums across cores).
    fn enriched_record(&self, rec: &TxRecord, c2c_of: &impl Fn(TxId) -> u32) -> TxRecord {
        let tx = rec.tx_id;
        let mut rec = rec.clone();
        let client = ProcessId::Client(rec.client);
        rec.rounds = self.trace.rounds_of(tx, client);
        rec.c2c_messages = c2c_of(tx);
        if rec.kind() == TxKind::Read {
            rec.reads = self.trace.read_results(tx).to_vec();
        }
        rec
    }

    /// Appends this core's transaction records to `history`, enriched with
    /// the core's trace aggregates.  Callers sort the assembled history by
    /// `(invoked_at, tx_id)` once all cores have contributed.
    pub(crate) fn collect_records(&self, history: &mut History, c2c_of: impl Fn(TxId) -> u32) {
        for rec in self.records.values() {
            history.push(self.enriched_record(rec, &c2c_of));
        }
    }

    /// The enriched records of every commit the trace logged since the
    /// last [`DispatchCore::retire_drained_commits`], in local RESP order —
    /// the streaming checker's incremental alternative to re-assembling
    /// the whole history per poll.  Immutable so a caller can pass a
    /// `c2c_of` closure that reads sibling cores' traces; pair with
    /// `retire_drained_commits` once the batch is consumed.
    pub(crate) fn new_commits(&self, c2c_of: impl Fn(TxId) -> u32) -> Vec<TxRecord> {
        self.trace
            .commits_since(self.commit_cursor)
            .filter_map(|tx| self.records.get(&tx))
            .map(|rec| self.enriched_record(rec, &c2c_of))
            .collect()
    }

    /// Marks everything returned by the last [`DispatchCore::new_commits`]
    /// as consumed and retires the trace's commit-log prefix, keeping the
    /// log O(drain window) instead of O(transactions).
    pub(crate) fn retire_drained_commits(&mut self) {
        self.commit_cursor = self.trace.commit_count();
        self.trace.retire_commits(self.commit_cursor);
    }

    /// A lower bound on the `invoked_at` of every commit this core will
    /// log *after* the current drain point: in-flight transactions keep
    /// their invocation time, and any not-yet-dispatched invocation will
    /// be stamped `max(now, at) + 1 > now` by the clock clamp.  This is
    /// the watermark a streaming checker may advance its certification
    /// frontier to.
    pub(crate) fn inv_floor(&self) -> u64 {
        let in_flight = self
            .in_flight
            .first()
            .map(|&(at, _)| at)
            .unwrap_or(u64::MAX);
        in_flight.min(self.now + 1)
    }

    /// Delivery-side fault gate, called after the clock clamp and before
    /// the handler runs.  Applies any crash recoveries for the destination
    /// that have elapsed by `now` (the process is rebuilt **from fresh
    /// state** by the restart factory), then intercepts the delivery if the
    /// attempt lands inside an active crash window: `DropInFlight` loses
    /// the message, `QueueInFlight` re-queues it to deliver no earlier than
    /// the recovery tick.  Returns the message iff delivery proceeds.
    /// A no-op (`Some(msg)`) without a fault schedule.
    fn crash_intercept(&mut self, msg: PendingMessage<P::Msg>) -> Option<PendingMessage<P::Msg>> {
        let Some(mut faults) = self.faults.take() else { return Some(msg) };
        let dst = msg.dst;
        // Recoveries first: every window of `dst` that fully elapsed must
        // have restarted the process before this delivery observes it —
        // even if no delivery was attempted inside the window itself (the
        // state loss happened regardless).
        for i in faults.schedule.elapsed_crashes(dst, self.now) {
            if faults.crash_recovered[i] {
                continue;
            }
            let crash = faults.schedule.crashes[i];
            if !faults.crash_announced[i] {
                faults.crash_announced[i] = true;
                if O::ENABLED {
                    self.sink.emit(ObsEvent::ServerCrashed { at: self.now, server: crash.server });
                }
            }
            faults.crash_recovered[i] = true;
            let restart = faults
                .restart
                .as_mut()
                .expect("crash schedules carry a restart factory (FaultState::new)");
            let fresh = restart(dst);
            assert_eq!(fresh.id(), dst, "restart factory rebuilt the wrong process");
            self.processes.insert(dst, fresh);
            if O::ENABLED {
                self.sink.emit(ObsEvent::ServerRecovered { at: self.now, server: crash.server });
            }
        }
        let mut verdict = Some(msg);
        if let Some((i, crash)) = faults.schedule.crash_window(dst, self.now) {
            if !faults.crash_announced[i] {
                faults.crash_announced[i] = true;
                if O::ENABLED {
                    self.sink.emit(ObsEvent::ServerCrashed { at: self.now, server: crash.server });
                }
            }
            let msg = verdict.take().expect("set above");
            match crash.policy {
                CrashPolicy::DropInFlight => {
                    if O::ENABLED {
                        self.sink.emit(ObsEvent::MessageDropped {
                            at: self.now,
                            msg: msg.id.0,
                            src: msg.src,
                            dst: msg.dst,
                        });
                    }
                    self.trace.prune_meta(msg.id);
                }
                CrashPolicy::QueueInFlight => {
                    // Held for the restarted process: re-queued with its
                    // delivery pushed to the recovery tick (the clock
                    // already advanced past the attempt, so the next pick
                    // lands at or past `recover_at` and takes the recovery
                    // path above).
                    let mut held = msg;
                    held.deliver_at = Some(crash.recover_at);
                    self.pool.insert(held);
                }
            }
        }
        self.faults = Some(faults);
        verdict
    }

    /// Lazily announces partition starts and heals: each transition is
    /// emitted once, on the first send decision whose clock observes it.
    /// Pure bookkeeping — the actual cut is decided per message by
    /// [`FaultSchedule::send_verdict`].
    fn note_partitions(&mut self) {
        let Some(faults) = self.faults.as_mut() else { return };
        for (i, p) in faults.schedule.partitions.iter().enumerate() {
            if !faults.partition_started[i] && self.now >= p.from && self.now < p.until {
                faults.partition_started[i] = true;
                if O::ENABLED {
                    self.sink.emit(ObsEvent::PartitionStarted { at: self.now, partition: i as u32 });
                }
            }
            if faults.partition_started[i] && !faults.partition_healed[i] && self.now >= p.until {
                faults.partition_healed[i] = true;
                if O::ENABLED {
                    self.sink.emit(ObsEvent::PartitionHealed { at: self.now, partition: i as u32 });
                }
            }
        }
    }

    /// Fault-engine retirement rule: once the core is quiescent, any
    /// transaction still in flight can never complete — its server crashed
    /// with the request in flight, or a partition swallowed a message of
    /// its protocol exchange.  Retires each as [`TxOutcome::Aborted`]
    /// (recorded as a Respond, so it flows into the commit log and the
    /// streaming checker's certification frontier advances instead of
    /// wedging).  A no-op without a fault schedule: on a fault-free run an
    /// in-flight transaction at quiescence is a protocol bug, and the
    /// existing completeness assertions should keep catching it.
    pub(crate) fn abort_orphans(&mut self) {
        if self.faults.is_none() || !self.is_quiescent() {
            return;
        }
        let orphans: Vec<(u64, TxId)> = std::mem::take(&mut self.in_flight).into_iter().collect();
        for (_, tx) in orphans {
            let rec = self.records.get_mut(&tx).expect("in-flight transaction has a record");
            rec.responded_at = Some(self.now);
            rec.outcome = Some(TxOutcome::Aborted);
            let client = rec.client;
            self.trace.record(self.now, ProcessId::Client(client), ActionKind::Respond { tx });
            // Let the client automaton drop its in-flight state for the
            // orphan, so the next invocation finds it idle.
            if let Some(p) = self.processes.get_mut(&ProcessId::Client(client)) {
                p.on_abort(tx);
            }
        }
    }
}

// The serial façade's dispatch entry points are defined here, next to the
// core, so that this module remains the single definition site of dispatch
// semantics (`scripts/ci.sh` greps for strays).  Everything else about
// `Simulation` — construction, planning, accessors, run loops, history
// assembly — lives in `crate::sim`.
impl<P, S, O> Simulation<P, S, O>
where
    P: Process,
    S: Scheduler<P::Msg>,
    O: TraceSink,
{
    /// Executes one step: dispatches the earliest due invocation if any,
    /// otherwise delivers the message chosen by the scheduler.  O(log n).
    pub fn step(&mut self) -> StepOutcome {
        self.core.step()
    }

    /// Manual (adversarial) driving: delivers the first pending message (in
    /// send order) matching `pred`, bypassing the scheduler.  Returns the
    /// delivered message id, or `None` if nothing matched.
    ///
    /// The adversary controls *order*, not *time*: the clock advances to
    /// `max(now, deliver_at) + 1` exactly as for a scheduled delivery, so a
    /// latency-stamped message delivered adversarially can never produce
    /// actions (e.g. a RESP) timestamped before its own delivery time.
    /// Under schedulers that stamp no delivery time (FIFO, random) the
    /// clamp is a no-op and the historical `now + 1` behaviour is
    /// unchanged — the Figs. 3–5 constructions drive those.
    pub fn deliver_where<F>(&mut self, pred: F) -> Option<MsgId>
    where
        F: Fn(&PendingMessage<P::Msg>) -> bool,
    {
        self.core.deliver_where(pred)
    }

    /// Manual driving: dispatches the next scheduled invocation for
    /// `client` without waiting for the engine to reach it.  Returns the
    /// transaction id, or `None` if no invocation is queued for that
    /// client.
    ///
    /// The clock clamp matches the engine's own invocation rule: the INV
    /// is recorded at `max(now, at) + 1`, never before the invocation's
    /// planned time (forcing controls *order* relative to other queued
    /// work, it does not rewind time).
    pub fn force_invoke(&mut self, client: ClientId) -> Option<TxId> {
        self.core.force_invoke(client)
    }
}
