//! Delivery schedulers: who decides which in-flight message is delivered
//! next.
//!
//! The paper's adversary is the asynchronous network: it may delay any
//! message arbitrarily (but not forever).  Schedulers model different
//! adversaries:
//!
//! * [`FifoScheduler`] — delivers messages in send order (a well-behaved
//!   network; useful as a baseline and for making examples readable);
//! * [`RandomScheduler`] — a seeded uniformly random adversary, used by the
//!   property-based tests to explore many interleavings reproducibly;
//! * [`LatencyScheduler`] — assigns each message a pseudo-random latency and
//!   delivers in delivery-time order, which is what the performance-oriented
//!   simulations use.
//!
//! Fully adversarial (scripted) schedules are expressed by driving the
//! simulation manually via [`crate::Simulation::deliver_where`], which is how
//! `snow-impossibility` constructs the executions of Figs. 3–5.

use crate::message::PendingMessage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A policy choosing which pending message to deliver next.
pub trait Scheduler<M> {
    /// Chooses the index (into `pending`) of the next message to deliver, or
    /// `None` to deliver nothing (only meaningful if `pending` is empty —
    /// reliable channels require eventual delivery, which the simulation
    /// enforces by only stopping when no messages are pending).
    fn choose(&mut self, pending: &[PendingMessage<M>], now: u64) -> Option<usize>;

    /// Hook called when a message is sent, letting latency-model schedulers
    /// stamp a delivery time.  Returns the delivery time, if the scheduler
    /// assigns one.
    fn on_send(&mut self, sent_at: u64) -> Option<u64> {
        let _ = sent_at;
        None
    }
}

/// Delivers messages in the order they were sent.
#[derive(Debug, Default, Clone)]
pub struct FifoScheduler;

impl FifoScheduler {
    /// Creates a FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler
    }
}

impl<M> Scheduler<M> for FifoScheduler {
    fn choose(&mut self, pending: &[PendingMessage<M>], _now: u64) -> Option<usize> {
        if pending.is_empty() {
            return None;
        }
        // Pending messages are kept in send order, so the oldest is index 0;
        // still scan defensively in case the pool was mutated out of order.
        let mut best = 0usize;
        for (i, p) in pending.iter().enumerate() {
            if p.id < pending[best].id {
                best = i;
            }
        }
        Some(best)
    }
}

/// Delivers a uniformly random pending message; deterministic per seed.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<M> Scheduler<M> for RandomScheduler {
    fn choose(&mut self, pending: &[PendingMessage<M>], _now: u64) -> Option<usize> {
        if pending.is_empty() {
            None
        } else {
            Some(self.rng.random_range(0..pending.len()))
        }
    }
}

/// Assigns each message a pseudo-random latency in `[min_latency, max_latency]`
/// ticks and delivers the message with the earliest delivery time first.
#[derive(Debug, Clone)]
pub struct LatencyScheduler {
    rng: StdRng,
    min_latency: u64,
    max_latency: u64,
}

impl LatencyScheduler {
    /// Creates a latency-model scheduler.
    ///
    /// # Panics
    /// Panics if `min_latency > max_latency`.
    pub fn new(seed: u64, min_latency: u64, max_latency: u64) -> Self {
        assert!(min_latency <= max_latency, "min_latency must be <= max_latency");
        LatencyScheduler {
            rng: StdRng::seed_from_u64(seed),
            min_latency,
            max_latency,
        }
    }
}

impl<M> Scheduler<M> for LatencyScheduler {
    fn choose(&mut self, pending: &[PendingMessage<M>], _now: u64) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| (p.deliver_at.unwrap_or(p.sent_at), p.id))
            .map(|(i, _)| i)
    }

    fn on_send(&mut self, sent_at: u64) -> Option<u64> {
        let lat = if self.min_latency == self.max_latency {
            self.min_latency
        } else {
            self.rng.random_range(self.min_latency..=self.max_latency)
        };
        Some(sent_at + lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgId;
    use snow_core::{ClientId, ProcessId, ServerId};

    #[derive(Debug, Clone)]
    struct M;
    impl crate::message::SimMessage for M {}

    fn pending(id: u64, sent_at: u64, deliver_at: Option<u64>) -> PendingMessage<M> {
        PendingMessage {
            id: MsgId(id),
            src: ProcessId::Client(ClientId(0)),
            dst: ProcessId::Server(ServerId(0)),
            msg: M,
            sent_at,
            parent: None,
            deliver_at,
        }
    }

    #[test]
    fn fifo_picks_lowest_id() {
        let mut s = FifoScheduler::new();
        let pool = vec![pending(3, 0, None), pending(1, 1, None), pending(2, 2, None)];
        assert_eq!(Scheduler::<M>::choose(&mut s, &pool, 5), Some(1));
        assert_eq!(Scheduler::<M>::choose(&mut s, &[], 5), None);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let pool = vec![pending(0, 0, None), pending(1, 0, None), pending(2, 0, None)];
        let picks_a: Vec<_> = {
            let mut s = RandomScheduler::new(7);
            (0..20).map(|_| Scheduler::<M>::choose(&mut s, &pool, 0).unwrap()).collect()
        };
        let picks_b: Vec<_> = {
            let mut s = RandomScheduler::new(7);
            (0..20).map(|_| Scheduler::<M>::choose(&mut s, &pool, 0).unwrap()).collect()
        };
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|&i| i < pool.len()));
        // Different seed should (almost surely) give a different sequence.
        let picks_c: Vec<_> = {
            let mut s = RandomScheduler::new(8);
            (0..20).map(|_| Scheduler::<M>::choose(&mut s, &pool, 0).unwrap()).collect()
        };
        assert_ne!(picks_a, picks_c);
        let mut s = RandomScheduler::new(1);
        assert_eq!(Scheduler::<M>::choose(&mut s, &[], 0), None);
    }

    #[test]
    fn latency_orders_by_delivery_time() {
        let mut s = LatencyScheduler::new(1, 5, 5);
        // on_send stamps sent_at + 5.
        assert_eq!(Scheduler::<M>::on_send(&mut s, 10), Some(15));
        let pool = vec![
            pending(0, 0, Some(30)),
            pending(1, 0, Some(10)),
            pending(2, 0, Some(20)),
        ];
        assert_eq!(Scheduler::<M>::choose(&mut s, &pool, 0), Some(1));
        assert_eq!(Scheduler::<M>::choose(&mut s, &[], 0), None);
    }

    #[test]
    #[should_panic]
    fn latency_rejects_inverted_bounds() {
        let _ = LatencyScheduler::new(0, 10, 1);
    }
}
