//! Delivery schedulers: who decides which in-flight message is delivered
//! next.
//!
//! The paper's adversary is the asynchronous network: it may delay any
//! message arbitrarily (but not forever).  Schedulers model different
//! adversaries:
//!
//! * [`FifoScheduler`] — delivers messages in send order (a well-behaved
//!   network; useful as a baseline and for making examples readable);
//! * [`RandomScheduler`] — a seeded uniformly random adversary, used by the
//!   property-based tests to explore many interleavings reproducibly;
//! * [`LatencyScheduler`] — assigns each message a pseudo-random latency and
//!   delivers in delivery-time order, which is what the performance-oriented
//!   simulations use.
//!
//! Fully adversarial (scripted) schedules are expressed by driving the
//! simulation manually via [`crate::Simulation::deliver_where`], which is how
//! `snow-impossibility` constructs the executions of Figs. 3–5.
//!
//! # Event-queue architecture and complexity contract
//!
//! Schedulers no longer scan a `&[PendingMessage]` slice; they pick directly
//! from the engine's indexed [`MessagePool`]:
//!
//! * [`Scheduler::on_send`] optionally stamps a delivery time when a message
//!   is sent.  The pool keys its delivery queue by
//!   `(deliver_at | sent_at, MsgId)`.
//! * [`Scheduler::next`] returns the id of the message to deliver.  FIFO and
//!   latency scheduling are a single O(log n) heap pop
//!   ([`MessagePool::pop_earliest`]): under the engine's monotone clock, the
//!   `(sent_at, id)` key order *is* send order, so FIFO needs no scan — the
//!   old "defensive" O(n) minimum scan is gone by construction (the heap
//!   tie-breaks equal keys by id, which is exactly the minimum the scan
//!   computed).  The random adversary draws a uniform rank and selects the
//!   k-th live message in send order via the pool's Fenwick index
//!   ([`MessagePool::nth_live`], O(log n)) — the same distribution *and the
//!   same per-seed choices* as indexing the old send-ordered `Vec`.
//!
//! Every scheduler is therefore O(log n) per step; the engine's removal of
//! the chosen message is O(1) (slot swap-remove).  A custom scheduler must
//! return a live id and must not remove messages itself.

use crate::message::MsgId;
use crate::pool::MessagePool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snow_core::ProcessId;

/// A policy choosing which pending message to deliver next.
pub trait Scheduler<M> {
    /// Chooses the next message to deliver from the live pool, or `None` if
    /// the pool is empty (reliable channels require eventual delivery, which
    /// the simulation enforces by only stopping when nothing is pending).
    ///
    /// Implementations must return the id of a live message and must not
    /// remove it themselves — the engine performs the removal/delivery.
    fn next(&mut self, pool: &mut MessagePool<M>, now: u64) -> Option<MsgId>;

    /// Hook called when a message is sent, letting latency-model schedulers
    /// stamp a delivery time.  Returns the delivery time, if the scheduler
    /// assigns one; `None` keys the message by its send time (FIFO order).
    fn on_send(&mut self, sent_at: u64) -> Option<u64> {
        let _ = sent_at;
        None
    }

    /// Like [`Scheduler::on_send`], but with the message's endpoints and id —
    /// what a topology-aware latency model keys its draw on.  The engine
    /// calls this (never `on_send` directly); the default delegates to
    /// [`Scheduler::on_send`], so schedulers that don't care about endpoints
    /// are unchanged and existing schedules stay bit-identical.
    fn on_send_to(&mut self, src: ProcessId, dst: ProcessId, id: MsgId, sent_at: u64) -> Option<u64> {
        let _ = (src, dst, id);
        self.on_send(sent_at)
    }

    /// Whether the engine should dispatch a planned invocation as soon as it
    /// is keyed **before every pending delivery** (strict ascending-key
    /// dispatch), instead of only when its planned time has been reached or
    /// nothing is pending.
    ///
    /// The default (`false`) preserves the historical rule — a future
    /// invocation waits while deliveries advance the clock — which every
    /// golden fixture is pinned against.  A scheduler whose latencies are
    /// *pure per-message functions* (see
    /// [`TopologyScheduler`](crate::topology::TopologyScheduler)) opts in:
    /// under strict key order every core dispatches its events in ascending
    /// key order, so an invocation planned at quiescence is stamped
    /// `planned + 1` on the serial engine and on every shard alike — the
    /// missing half of shard-count-independent histories.  (With the
    /// historical rule, a shard hosting two clients whose planned times
    /// straddle another shard's invocation sees the second invocation as
    /// "not due" once the first one's sends hit the local pool, and
    /// deliveries drag the clock past it.)
    fn strict_key_order(&self) -> bool {
        false
    }
}

/// Delivers messages in the order they were sent: one O(log n) pop of the
/// `(sent_at, id)`-keyed delivery queue per step.
#[derive(Debug, Default, Clone)]
pub struct FifoScheduler;

impl FifoScheduler {
    /// Creates a FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler
    }
}

impl<M> Scheduler<M> for FifoScheduler {
    fn next(&mut self, pool: &mut MessagePool<M>, _now: u64) -> Option<MsgId> {
        pool.pop_earliest()
    }
}

/// Delivers a uniformly random pending message; deterministic per seed.
///
/// The draw selects a uniform *rank* in send order (Fenwick selection,
/// O(log n)), so the choice sequence for a given seed is identical to the
/// historical behaviour of indexing the send-ordered pending `Vec`.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<M> Scheduler<M> for RandomScheduler {
    fn next(&mut self, pool: &mut MessagePool<M>, _now: u64) -> Option<MsgId> {
        if pool.is_empty() {
            None
        } else {
            pool.nth_live(self.rng.random_range(0..pool.len()))
        }
    }
}

/// Assigns each message a pseudo-random latency in `[min_latency, max_latency]`
/// ticks and delivers the message with the earliest delivery time first —
/// one O(log n) pop of the `(deliver_at, id)`-keyed queue per step.
///
/// # Latency schedules are shard-count-dependent
///
/// Each latency comes from a stateful **draw-order RNG**: the n-th draw
/// latches onto whichever send happens to be the n-th `on_send` *on that
/// engine*.  On the sharded engine every shard owns its own RNG
/// (`shard_seed`) and sees only its own sends, so the latency assigned to a
/// logical message changes with the shard count — 1-shard runs match serial
/// bit-for-bit, but 4-shard runs are a different (equally deterministic)
/// schedule.  The golden fixtures pin this behaviour; do not change it.
/// When a schedule must be *identical across shard counts* — e.g. the
/// scenario matrix — use
/// [`TopologyScheduler`](crate::topology::TopologyScheduler), whose draws
/// are pure per-message functions instead of draw-order state.
#[derive(Debug, Clone)]
pub struct LatencyScheduler {
    rng: StdRng,
    min_latency: u64,
    max_latency: u64,
}

impl LatencyScheduler {
    /// Creates a latency-model scheduler.
    ///
    /// # Panics
    /// Panics if `min_latency > max_latency`.
    pub fn new(seed: u64, min_latency: u64, max_latency: u64) -> Self {
        assert!(min_latency <= max_latency, "min_latency must be <= max_latency");
        LatencyScheduler {
            rng: StdRng::seed_from_u64(seed),
            min_latency,
            max_latency,
        }
    }
}

impl<M> Scheduler<M> for LatencyScheduler {
    fn next(&mut self, pool: &mut MessagePool<M>, _now: u64) -> Option<MsgId> {
        pool.pop_earliest()
    }

    fn on_send(&mut self, sent_at: u64) -> Option<u64> {
        let lat = if self.min_latency == self.max_latency {
            self.min_latency
        } else {
            self.rng.random_range(self.min_latency..=self.max_latency)
        };
        Some(sent_at + lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgId, PendingMessage};
    use snow_core::{ClientId, ProcessId, ServerId};

    #[derive(Debug, Clone)]
    struct M;
    impl crate::message::SimMessage for M {}

    fn pending(id: u64, sent_at: u64, deliver_at: Option<u64>) -> PendingMessage<M> {
        PendingMessage {
            id: MsgId(id),
            src: ProcessId::Client(ClientId(0)),
            dst: ProcessId::Server(ServerId(0)),
            msg: M,
            sent_at,
            parent: None,
            deliver_at,
        }
    }

    fn pool_of(msgs: Vec<PendingMessage<M>>) -> MessagePool<M> {
        let mut pool = MessagePool::new();
        for m in msgs {
            pool.insert(m);
        }
        pool
    }

    /// Drains the pool through a scheduler, returning delivery order.
    fn drain<S: Scheduler<M>>(s: &mut S, pool: &mut MessagePool<M>) -> Vec<u64> {
        let mut order = Vec::new();
        while let Some(id) = s.next(pool, 0) {
            pool.remove(id).expect("scheduler returns live ids");
            order.push(id.0);
        }
        order
    }

    #[test]
    fn fifo_delivers_in_send_order() {
        let mut s = FifoScheduler::new();
        let mut pool = pool_of(vec![pending(0, 0, None), pending(1, 1, None), pending(2, 2, None)]);
        assert_eq!(drain(&mut s, &mut pool), vec![0, 1, 2]);
        assert_eq!(Scheduler::<M>::next(&mut s, &mut pool, 5), None);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let make_pool = || {
            pool_of(vec![
                pending(0, 0, None),
                pending(1, 0, None),
                pending(2, 0, None),
                pending(3, 0, None),
            ])
        };
        let order_a = drain(&mut RandomScheduler::new(7), &mut make_pool());
        let order_b = drain(&mut RandomScheduler::new(7), &mut make_pool());
        assert_eq!(order_a, order_b);
        let mut sorted = order_a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "every message delivered once");
        // Different seed should (almost surely) give a different sequence
        // over enough draws.
        let big_pool = || pool_of((0..16).map(|i| pending(i, 0, None)).collect());
        assert_ne!(
            drain(&mut RandomScheduler::new(7), &mut big_pool()),
            drain(&mut RandomScheduler::new(8), &mut big_pool()),
        );
        let mut empty: MessagePool<M> = MessagePool::new();
        assert_eq!(RandomScheduler::new(1).next(&mut empty, 0), None);
    }

    #[test]
    fn latency_orders_by_delivery_time() {
        let mut s = LatencyScheduler::new(1, 5, 5);
        // on_send stamps sent_at + 5.
        assert_eq!(Scheduler::<M>::on_send(&mut s, 10), Some(15));
        let mut pool = pool_of(vec![
            pending(0, 0, Some(30)),
            pending(1, 0, Some(10)),
            pending(2, 0, Some(20)),
        ]);
        assert_eq!(drain(&mut s, &mut pool), vec![1, 2, 0]);
    }

    #[test]
    #[should_panic]
    fn latency_rejects_inverted_bounds() {
        let _ = LatencyScheduler::new(0, 10, 1);
    }
}
