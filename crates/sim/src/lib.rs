//! # snow-sim
//!
//! A deterministic discrete-event simulator of asynchronous message-passing
//! processes, in the style of the I/O-automata model the paper uses (§2,
//! Appendix A):
//!
//! * processes ([`Process`]) are state machines reacting to delivered
//!   messages and to transaction invocations, emitting sends and responses
//!   through an [`Effects`] buffer — exactly the "actions at one automaton"
//!   granularity the paper's fragment arguments rely on.  The
//!   [`Process`]/[`Effects`] contract itself lives in `snow-core`
//!   (transport-agnostic); this crate provides two of its three execution
//!   substrates — the serial [`Simulation`] and the sharded
//!   [`ParallelSimulation`] (see [`parallel`]) — the third being the tokio
//!   runtime in `snow-runtime`;
//! * the network is **reliable but asynchronous**: every sent message is
//!   eventually deliverable, but the order and timing of deliveries are under
//!   the control of a [`Scheduler`] (seeded-random, FIFO, latency-modelled, or
//!   fully manual/adversarial).  In-flight messages live in an indexed
//!   [`MessagePool`] (delivery heap + Fenwick rank index + O(1) slot
//!   removal), so every scheduler decides in O(log n) — see [`pool`] and
//!   [`scheduler`] for the complexity contract;
//! * every external action (INV, RESP, send, recv) is recorded in a
//!   [`Trace`], with causal parent links from a delivered message to the
//!   messages its handler sent.  The trace is what lets `snow-checker`
//!   verify the N (non-blocking) and O (one-response) properties without
//!   trusting the protocol's self-reporting;
//! * the simulation also assembles the [`snow_core::History`] of the run.
//!
//! The serial simulator is single-threaded and fully deterministic given
//! `(configuration, scheduler seed, invocation plan)`, which is what makes
//! the impossibility constructions of `snow-impossibility` replayable.
//! The sharded [`ParallelSimulation`] keeps that determinism — histories
//! are a pure function of `(configuration, seeds, shard count)` — while
//! running one worker thread per shard, exchanging cross-shard messages at
//! deterministic epoch barriers; with one shard it reproduces the serial
//! engine bit for bit.  A seeded [`FaultSchedule`] (see [`fault`]) extends
//! the contract to failures: drop/duplicate/delay regions, partitions and
//! server crash+recovery are pure per-message decisions, so a faulty
//! history is a pure function of `(configuration, seeds, shard count,
//! fault schedule)` on both substrates.
//!
//! Both simulators execute on **one dispatch core** (the private `engine`
//! module): [`Simulation`] wraps a single core, [`ParallelSimulation`]
//! one per shard.  Every dispatch decision — including the clock
//! invariant that no event is dispatched before its own timestamp — is
//! defined exactly once there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod fault;
pub mod message;
pub mod parallel;
pub mod pool;
pub mod scheduler;
pub mod sim;
pub mod topology;
pub mod trace;

pub use fault::{
    Crash, CrashPolicy, EndpointSel, FaultAction, FaultRegion, FaultSchedule, Partition,
    PartitionPolicy, RestartFn,
};
pub use message::{MsgId, MsgInfo, MsgKind, PendingMessage, SimMessage};
pub use parallel::ParallelSimulation;
pub use pool::MessagePool;
pub use snow_core::{Effects, Process};
pub use snow_obs::{NullSink, ObsEvent, RecordingSink, ShardEvent, TraceSink};
pub use scheduler::{FifoScheduler, LatencyScheduler, RandomScheduler, Scheduler};
pub use sim::{CommitDrain, InvocationPlan, Simulation, StepOutcome};
pub use topology::{LinkDist, Topology, TopologyScheduler, TICK};
pub use trace::{Action, ActionKind, CausalEnvelope, Trace};
