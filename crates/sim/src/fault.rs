//! Deterministic fault injection: the schedule data model and its pure
//! decision functions.
//!
//! A [`FaultSchedule`] describes *what goes wrong* in a run — message-level
//! fault regions (drop / duplicate / extra delay over `(src, dst,
//! virtual-time interval)` predicates), link-level [`Partition`]s with heal
//! times, and server [`Crash`]es with recovery and state loss — as plain
//! data, evaluated by pure functions of the message being decided.  The
//! determinism contract matches the schedulers': a faulty history is a pure
//! function of `(configuration, seeds, shard count, fault schedule)`.  Two
//! properties make that hold on the sharded engine without coordination:
//!
//! * **per-message decisions** — a region's probabilistic gate hashes
//!   `(schedule seed, MsgId)` (`splitmix64`), never a draw-order RNG, so
//!   the verdict for a message does not depend on which other messages were
//!   decided first (message ids are shard-strided and identical between a
//!   serial run and a 1-shard parallel run);
//! * **single decision sites** — send-side faults (regions, partitions) are
//!   decided on the *sending* core inside `apply_effects`, delivery-side
//!   faults (crash windows) on the *destination* core inside the dispatch
//!   step; both live in `engine.rs`, the workspace's one dispatch
//!   definition site (`scripts/ci.sh` greps for strays).
//!
//! An **empty schedule is structurally inert**: the engine guards every
//! fault check with `faults.is_some()`, message-id assignment is never
//! perturbed, and the 30 golden histories stay byte-identical (pinned by
//! `tests/fault_determinism.rs`).

use crate::message::MsgId;
use snow_core::{ClientId, ProcessId, ServerId};

/// What a matched [`FaultRegion`] does to a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The message is silently lost in flight (sent, never delivered).
    Drop,
    /// The message is delivered twice: a second copy with its own
    /// (shard-strided) id is sent alongside the original.
    Duplicate,
    /// The message's delivery key is pushed back by this many extra ticks —
    /// reordering beyond the scheduler's own latitude.
    Delay(u64),
}

/// Selects the processes a fault region applies to at one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointSel {
    /// Any process.
    Any,
    /// Any client.
    AnyClient,
    /// Any server.
    AnyServer,
    /// One specific client.
    Client(ClientId),
    /// One specific server.
    Server(ServerId),
    /// Every process placed at one topology site, as bitmasks over server
    /// and client ids — build with [`EndpointSel::site`].  Keeps the
    /// selector `Copy` while covering an arbitrary process set.
    Site {
        /// Bit `i` set ⇒ `ServerId(i)` is selected.
        servers: u64,
        /// Bit `i` set ⇒ `ClientId(i)` is selected.
        clients: u64,
    },
}

impl EndpointSel {
    /// Selects every process the topology places at `site` — so a WAN
    /// fault region targets a whole site without enumerating ids.
    ///
    /// # Panics
    /// Panics if the topology has a process id ≥ 64 (see
    /// [`Topology::site_masks`](crate::topology::Topology::site_masks)).
    pub fn site(topology: &crate::topology::Topology, site: usize) -> Self {
        let (servers, clients) = topology.site_masks(site);
        EndpointSel::Site { servers, clients }
    }

    /// True if `id` is selected.
    pub fn matches(&self, id: ProcessId) -> bool {
        match (self, id) {
            (EndpointSel::Any, _) => true,
            (EndpointSel::AnyClient, ProcessId::Client(_)) => true,
            (EndpointSel::AnyServer, ProcessId::Server(_)) => true,
            (EndpointSel::Client(c), ProcessId::Client(x)) => *c == x,
            (EndpointSel::Server(s), ProcessId::Server(x)) => *s == x,
            (EndpointSel::Site { servers, .. }, ProcessId::Server(x)) => {
                x.0 < 64 && servers & (1 << x.0) != 0
            }
            (EndpointSel::Site { clients, .. }, ProcessId::Client(x)) => {
                x.0 < 64 && clients & (1 << x.0) != 0
            }
            _ => false,
        }
    }
}

/// A message-level fault region: `action` applies to messages from `src` to
/// `dst` sent in `[from, until)`, gated per message by `chance_pct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRegion {
    /// What happens to a matched message.
    pub action: FaultAction,
    /// Sending-endpoint selector.
    pub src: EndpointSel,
    /// Destination-endpoint selector.
    pub dst: EndpointSel,
    /// First send tick the region covers (inclusive).
    pub from: u64,
    /// First send tick past the region (exclusive; `u64::MAX` = forever).
    pub until: u64,
    /// Percentage of matched messages actually affected (100 = all),
    /// decided by a deterministic per-message hash — see `splitmix64`.
    pub chance_pct: u8,
}

impl FaultRegion {
    /// A region affecting every matched message (`chance_pct` 100).
    pub fn always(action: FaultAction, src: EndpointSel, dst: EndpointSel, from: u64, until: u64) -> Self {
        FaultRegion { action, src, dst, from, until, chance_pct: 100 }
    }

    /// True if the region covers a message with these coordinates (before
    /// the probabilistic gate).
    pub fn covers(&self, src: ProcessId, dst: ProcessId, sent_at: u64) -> bool {
        sent_at >= self.from && sent_at < self.until && self.src.matches(src) && self.dst.matches(dst)
    }
}

/// What happens to a message crossing an active partition cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Messages crossing the cut are lost.
    Drop,
    /// Messages crossing the cut are held and delivered no earlier than the
    /// heal time (`until`).
    Queue,
}

/// A link-level partition: messages from side A to side B (and, if
/// `symmetric`, B to A) sent in `[from, until)` are cut per `policy`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut.
    pub side_a: Vec<ProcessId>,
    /// The other side; empty means "every process not in `side_a`".
    pub side_b: Vec<ProcessId>,
    /// Cut both directions (`true`) or only A→B (`false`, an asymmetric
    /// partition: B can still reach A).
    pub symmetric: bool,
    /// First send tick the partition is in force (inclusive).
    pub from: u64,
    /// Heal time (exclusive): sends at or past this tick cross freely.
    pub until: u64,
    /// What happens to cut messages.
    pub policy: PartitionPolicy,
}

impl Partition {
    /// Isolates one server from every other process in `[from, until)`.
    pub fn isolate_server(server: ServerId, from: u64, until: u64, policy: PartitionPolicy) -> Self {
        Partition {
            side_a: vec![ProcessId::Server(server)],
            side_b: Vec::new(),
            symmetric: true,
            from,
            until,
            policy,
        }
    }

    /// Isolates every process the topology places at `site` from the rest
    /// of the world in `[from, until)` — a WAN partition in one line.
    pub fn isolate_site(
        topology: &crate::topology::Topology,
        site: usize,
        from: u64,
        until: u64,
        policy: PartitionPolicy,
    ) -> Self {
        Partition {
            side_a: topology.site_processes(site),
            side_b: Vec::new(),
            symmetric: true,
            from,
            until,
            policy,
        }
    }

    fn in_a(&self, id: ProcessId) -> bool {
        self.side_a.contains(&id)
    }

    fn in_b(&self, id: ProcessId) -> bool {
        if self.side_b.is_empty() {
            !self.in_a(id)
        } else {
            self.side_b.contains(&id)
        }
    }

    /// True if a message `src → dst` sent at `at` crosses the active cut.
    pub fn cuts(&self, src: ProcessId, dst: ProcessId, at: u64) -> bool {
        if at < self.from || at >= self.until {
            return false;
        }
        (self.in_a(src) && self.in_b(dst)) || (self.symmetric && self.in_a(dst) && self.in_b(src))
    }
}

/// What happens to messages addressed to a server inside its crash window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPolicy {
    /// In-flight messages to the crashed server are dropped.
    DropInFlight,
    /// In-flight messages to the crashed server are held and re-delivered
    /// once it recovers.
    QueueInFlight,
}

/// A server crash with recovery and state loss: deliveries attempted in
/// `[at, recover_at)` hit a dead process (per `policy`); the first delivery
/// at or past `recover_at` finds the server restarted **from fresh state**
/// (the engine's restart factory rebuilds the process).  Messages already
/// sent *by* the server before the crash still deliver — the classic
/// crash-stop-with-restart model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The crashing server.
    pub server: ServerId,
    /// First tick of the crash window (inclusive).
    pub at: u64,
    /// Recovery tick (exclusive end of the window).  Windows of one server
    /// must not overlap.
    pub recover_at: u64,
    /// What happens to deliveries attempted inside the window.
    pub policy: CrashPolicy,
}

/// A complete fault plan for a run: seeded, pure data, cloned per shard on
/// the parallel engine.  See the module docs for the determinism contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Seed of the per-message probabilistic gates.
    pub seed: u64,
    /// Message-level fault regions, evaluated in order at send time.
    pub regions: Vec<FaultRegion>,
    /// Link-level partitions, evaluated at send time.
    pub partitions: Vec<Partition>,
    /// Server crash windows, evaluated at delivery time.
    pub crashes: Vec<Crash>,
}

/// How the send-side fault evaluation disposed of one message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SendVerdict {
    /// The message is lost (a drop region or a `Drop`-policy partition).
    pub(crate) dropped: bool,
    /// A duplicate with its own id is sent alongside the original.
    pub(crate) duplicate: bool,
    /// Extra ticks added to the delivery key (sum of matched delay
    /// regions).
    pub(crate) extra_delay: u64,
    /// Deliver no earlier than this tick (a `Queue`-policy partition's heal
    /// time).
    pub(crate) hold_until: Option<u64>,
}

impl SendVerdict {
    /// True if the send proceeds untouched.
    #[cfg(test)]
    pub(crate) fn is_clean(&self) -> bool {
        *self == SendVerdict::default()
    }
}

impl FaultSchedule {
    /// An empty schedule gated by `seed` (regions added later may use
    /// probabilistic chances).
    pub fn new(seed: u64) -> Self {
        FaultSchedule { seed, ..FaultSchedule::default() }
    }

    /// True if the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty() && self.partitions.is_empty() && self.crashes.is_empty()
    }

    /// Adds a message-level fault region (builder style).
    pub fn with_region(mut self, region: FaultRegion) -> Self {
        self.regions.push(region);
        self
    }

    /// Adds a partition (builder style).
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// Adds a crash window (builder style).
    pub fn with_crash(mut self, crash: Crash) -> Self {
        self.crashes.push(crash);
        self
    }

    /// The pure send-side verdict for a message: regions first (a matched
    /// `Drop` wins; `Duplicate` and `Delay` accumulate), then partitions
    /// (`Drop` policy loses the message, `Queue` holds it to the heal
    /// time).  A function of `(schedule, src, dst, sent_at, id)` only.
    pub(crate) fn send_verdict(
        &self,
        src: ProcessId,
        dst: ProcessId,
        sent_at: u64,
        id: MsgId,
    ) -> SendVerdict {
        let mut verdict = SendVerdict::default();
        for (i, region) in self.regions.iter().enumerate() {
            if !region.covers(src, dst, sent_at) || !self.gate(id, i as u64, region.chance_pct) {
                continue;
            }
            match region.action {
                FaultAction::Drop => verdict.dropped = true,
                FaultAction::Duplicate => verdict.duplicate = true,
                FaultAction::Delay(extra) => {
                    verdict.extra_delay = verdict.extra_delay.saturating_add(extra)
                }
            }
        }
        for partition in &self.partitions {
            if !partition.cuts(src, dst, sent_at) {
                continue;
            }
            match partition.policy {
                PartitionPolicy::Drop => verdict.dropped = true,
                PartitionPolicy::Queue => {
                    let held = verdict.hold_until.unwrap_or(0).max(partition.until);
                    verdict.hold_until = Some(held);
                }
            }
        }
        verdict
    }

    /// The crash window covering a delivery to `dst` attempted at `now`
    /// (`at ≤ now < recover_at`), with its schedule index.
    pub(crate) fn crash_window(&self, dst: ProcessId, now: u64) -> Option<(usize, Crash)> {
        let ProcessId::Server(server) = dst else { return None };
        self.crashes
            .iter()
            .enumerate()
            .find(|(_, c)| c.server == server && now >= c.at && now < c.recover_at)
            .map(|(i, c)| (i, *c))
    }

    /// Crash windows of `dst` that have fully elapsed by `now`
    /// (`recover_at ≤ now`), in schedule order — the deliveries that must
    /// observe a restarted process.
    pub(crate) fn elapsed_crashes(&self, dst: ProcessId, now: u64) -> Vec<usize> {
        let ProcessId::Server(server) = dst else { return Vec::new() };
        self.crashes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.server == server && now >= c.recover_at)
            .map(|(i, _)| i)
            .collect()
    }

    /// The deterministic per-message probabilistic gate: affects the
    /// message iff `hash(seed, id, region) % 100 < chance_pct`.  Hashing
    /// the message id (not a draw sequence) keeps verdicts independent of
    /// decision order, which is what makes 1-shard parallel runs
    /// byte-identical to serial ones.
    fn gate(&self, id: MsgId, salt: u64, chance_pct: u8) -> bool {
        if chance_pct >= 100 {
            return true;
        }
        let h = splitmix64(
            self.seed
                ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ salt.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        (h % 100) < chance_pct as u64
    }
}

/// SplitMix64: the statelessly seedable mixer the probabilistic gates use.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The factory a fault-enabled engine uses to rebuild a crashed process
/// from fresh state at recovery.
pub type RestartFn<P> = Box<dyn FnMut(ProcessId) -> P + Send>;

/// Runtime fault state attached to one dispatch core: the schedule, the
/// restart factory, and the lazy-emission bookkeeping for the
/// crash/partition observability events (each is announced once, on the
/// first dispatch decision that observes it).
pub(crate) struct FaultState<P> {
    pub(crate) schedule: FaultSchedule,
    pub(crate) restart: Option<RestartFn<P>>,
    /// `PartitionStarted` emitted (indexed like `schedule.partitions`).
    pub(crate) partition_started: Vec<bool>,
    /// `PartitionHealed` emitted.
    pub(crate) partition_healed: Vec<bool>,
    /// `ServerCrashed` emitted (indexed like `schedule.crashes`).
    pub(crate) crash_announced: Vec<bool>,
    /// Restart applied (and `ServerRecovered` emitted).
    pub(crate) crash_recovered: Vec<bool>,
}

impl<P> FaultState<P> {
    pub(crate) fn new(schedule: FaultSchedule, restart: Option<RestartFn<P>>) -> Self {
        assert!(
            schedule.crashes.is_empty() || restart.is_some(),
            "a fault schedule with crash windows needs a restart factory"
        );
        let partitions = schedule.partitions.len();
        let crashes = schedule.crashes.len();
        FaultState {
            schedule,
            restart,
            partition_started: vec![false; partitions],
            partition_healed: vec![false; partitions],
            crash_announced: vec![false; crashes],
            crash_recovered: vec![false; crashes],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: ProcessId = ProcessId::Client(ClientId(0));
    const S0: ProcessId = ProcessId::Server(ServerId(0));
    const S1: ProcessId = ProcessId::Server(ServerId(1));

    #[test]
    fn endpoint_selectors_match_expected_processes() {
        assert!(EndpointSel::Any.matches(C0) && EndpointSel::Any.matches(S0));
        assert!(EndpointSel::AnyClient.matches(C0) && !EndpointSel::AnyClient.matches(S0));
        assert!(EndpointSel::AnyServer.matches(S0) && !EndpointSel::AnyServer.matches(C0));
        assert!(EndpointSel::Server(ServerId(0)).matches(S0));
        assert!(!EndpointSel::Server(ServerId(0)).matches(S1));
        assert!(!EndpointSel::Client(ClientId(0)).matches(S0));
    }

    #[test]
    fn site_selector_matches_per_mask_and_builds_from_topology() {
        let sel = EndpointSel::Site { servers: 0b01, clients: 0b10 };
        assert!(sel.matches(S0));
        assert!(!sel.matches(S1));
        assert!(!sel.matches(C0));
        assert!(sel.matches(ProcessId::Client(ClientId(1))));

        // From a topology: site 1 holds server 1 and client 0.
        let config = snow_core::SystemConfig::mwmr(2, 1, 1);
        let mut t = crate::topology::Topology::for_config(
            &config,
            &["a", "b"],
            crate::topology::LinkDist::Uniform { min: 1, max: 1 },
            crate::topology::LinkDist::Uniform { min: 5, max: 5 },
        );
        t.place_server(ServerId(1), 1);
        t.place_client(ClientId(0), 1);
        let sel = EndpointSel::site(&t, 1);
        assert!(sel.matches(S1) && sel.matches(C0));
        assert!(!sel.matches(S0));
        let region = FaultRegion::always(FaultAction::Drop, EndpointSel::Any, sel, 0, u64::MAX);
        assert!(region.covers(S0, S1, 3));
        assert!(!region.covers(S1, S0, 3));
    }

    #[test]
    fn isolate_site_cuts_exactly_the_sites_processes() {
        let config = snow_core::SystemConfig::mwmr(2, 1, 1);
        let mut t = crate::topology::Topology::for_config(
            &config,
            &["dc", "edge"],
            crate::topology::LinkDist::Uniform { min: 1, max: 1 },
            crate::topology::LinkDist::Uniform { min: 5, max: 5 },
        );
        t.place_server(ServerId(1), 1);
        let p = Partition::isolate_site(&t, 1, 10, 20, PartitionPolicy::Drop);
        assert!(p.cuts(S1, S0, 10));
        assert!(p.cuts(S0, S1, 15), "symmetric cut");
        assert!(!p.cuts(S0, C0, 15), "intra-remainder traffic flows");
        assert!(!p.cuts(S1, S0, 20), "healed at `until`");
    }

    #[test]
    fn regions_cover_their_interval_and_endpoints() {
        let r = FaultRegion::always(FaultAction::Drop, EndpointSel::AnyClient, EndpointSel::Server(ServerId(0)), 10, 20);
        assert!(r.covers(C0, S0, 10));
        assert!(r.covers(C0, S0, 19));
        assert!(!r.covers(C0, S0, 9));
        assert!(!r.covers(C0, S0, 20));
        assert!(!r.covers(C0, S1, 15));
        assert!(!r.covers(S1, S0, 15));
    }

    #[test]
    fn send_verdicts_are_pure_and_combine_regions() {
        let s = FaultSchedule::new(7)
            .with_region(FaultRegion::always(FaultAction::Delay(5), EndpointSel::Any, EndpointSel::Any, 0, u64::MAX))
            .with_region(FaultRegion::always(FaultAction::Delay(3), EndpointSel::Any, EndpointSel::Server(ServerId(0)), 0, u64::MAX))
            .with_region(FaultRegion::always(FaultAction::Duplicate, EndpointSel::Any, EndpointSel::Server(ServerId(1)), 0, u64::MAX));
        let v0 = s.send_verdict(C0, S0, 4, MsgId(9));
        assert_eq!(v0.extra_delay, 8);
        assert!(!v0.duplicate && !v0.dropped && v0.hold_until.is_none());
        let v1 = s.send_verdict(C0, S1, 4, MsgId(9));
        assert_eq!(v1.extra_delay, 5);
        assert!(v1.duplicate);
        // Purity: identical inputs, identical verdicts.
        assert_eq!(v0, s.send_verdict(C0, S0, 4, MsgId(9)));
    }

    #[test]
    fn probabilistic_gate_is_a_function_of_the_message_id() {
        let s = FaultSchedule::new(42).with_region(FaultRegion {
            action: FaultAction::Drop,
            src: EndpointSel::Any,
            dst: EndpointSel::Any,
            from: 0,
            until: u64::MAX,
            chance_pct: 30,
        });
        let dropped: Vec<bool> =
            (0..200u64).map(|i| s.send_verdict(C0, S0, 1, MsgId(i)).dropped).collect();
        let again: Vec<bool> =
            (0..200u64).map(|i| s.send_verdict(C0, S0, 1, MsgId(i)).dropped).collect();
        assert_eq!(dropped, again, "gate must be a pure function of the id");
        let hits = dropped.iter().filter(|&&d| d).count();
        assert!(hits > 20 && hits < 100, "~30% of 200 expected, got {hits}");
        // A different seed decides differently somewhere.
        let other = FaultSchedule { seed: 43, ..s.clone() };
        assert_ne!(
            dropped,
            (0..200u64).map(|i| other.send_verdict(C0, S0, 1, MsgId(i)).dropped).collect::<Vec<_>>()
        );
    }

    #[test]
    fn partitions_cut_by_side_and_direction() {
        let asym = Partition {
            side_a: vec![S0],
            side_b: Vec::new(),
            symmetric: false,
            from: 10,
            until: 20,
            policy: PartitionPolicy::Drop,
        };
        assert!(asym.cuts(S0, C0, 15), "A→B cut");
        assert!(!asym.cuts(C0, S0, 15), "B→A open (asymmetric)");
        assert!(!asym.cuts(S0, C0, 25), "healed");
        let sym = Partition { symmetric: true, ..asym.clone() };
        assert!(sym.cuts(C0, S0, 15), "B→A cut too (symmetric)");
        assert!(!sym.cuts(C0, C0, 15), "within one side");
        let v = FaultSchedule::new(0)
            .with_partition(Partition::isolate_server(ServerId(0), 5, 9, PartitionPolicy::Queue))
            .send_verdict(C0, S0, 6, MsgId(1));
        assert_eq!(v.hold_until, Some(9));
        assert!(!v.dropped);
    }

    #[test]
    fn crash_windows_cover_and_elapse() {
        let s = FaultSchedule::new(0).with_crash(Crash {
            server: ServerId(1),
            at: 100,
            recover_at: 200,
            policy: CrashPolicy::DropInFlight,
        });
        assert!(s.crash_window(S1, 99).is_none());
        assert_eq!(s.crash_window(S1, 100).map(|(i, _)| i), Some(0));
        assert_eq!(s.crash_window(S1, 199).map(|(i, _)| i), Some(0));
        assert!(s.crash_window(S1, 200).is_none());
        assert!(s.crash_window(S0, 150).is_none(), "other servers unaffected");
        assert!(s.crash_window(C0, 150).is_none(), "clients never crash");
        assert!(s.elapsed_crashes(S1, 199).is_empty());
        assert_eq!(s.elapsed_crashes(S1, 200), vec![0]);
    }

    #[test]
    fn empty_schedule_is_empty_and_clean() {
        let s = FaultSchedule::new(9);
        assert!(s.is_empty());
        assert!(s.send_verdict(C0, S0, 0, MsgId(0)).is_clean());
        let non_empty = s.with_crash(Crash {
            server: ServerId(0),
            at: 0,
            recover_at: 1,
            policy: CrashPolicy::QueueInFlight,
        });
        assert!(!non_empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "restart factory")]
    fn crash_schedules_require_a_restart_factory() {
        let schedule = FaultSchedule::new(0).with_crash(Crash {
            server: ServerId(0),
            at: 0,
            recover_at: 10,
            policy: CrashPolicy::DropInFlight,
        });
        let _ = FaultState::<()>::new(schedule, None);
    }
}
