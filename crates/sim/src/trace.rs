//! Action traces: the external actions of an execution, in order.
//!
//! A [`Trace`] is the executable analogue of the paper's executions
//! `σ₀, a₁, σ₁, …`: we record only the actions (the paper does the same to
//! "simplify notation"), each tagged with the automaton at which it occurs,
//! the simulation time, and — for sends — the causal parent message.
//!
//! # Incremental indexes
//!
//! Derived quantities are maintained *as actions are recorded*, so the
//! per-transaction queries the history assembly needs are O(1)/O(answer)
//! instead of O(actions) rescans:
//!
//! * `MsgId → send/recv action` lookup tables make [`Trace::send_of`],
//!   [`Trace::recv_of`] and [`Trace::parent_of`] O(1);
//! * per-transaction counters accumulate C2C sends, round depths (the causal
//!   parent-chain walk runs at record time, each hop now O(1)), and the
//!   [`ReadResult`] instrumentation of read responses received by the
//!   invoking client;
//! * per-transaction and per-process action lists back [`Trace::of_tx`] and
//!   [`Trace::at`] without scanning.
//!
//! With these indexes, [`crate::Simulation::history`] is a single pass over
//! the recorded transactions rather than O(transactions × actions).
//!
//! Read-response instrumentation requires the transaction's `Invoke` action
//! to be recorded before its message actions (always true for engine-driven
//! traces; hand-built traces must follow the same order).

use crate::message::{MsgId, MsgInfo, MsgKind};
use snow_core::{ProcessId, ReadResult, TxId, TxKind};
use std::collections::HashMap;

/// The kind of an externally visible action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionKind {
    /// INV(T): a transaction was invoked at a client.
    Invoke {
        /// The transaction.
        tx: TxId,
        /// READ or WRITE.
        kind: TxKind,
    },
    /// RESP(T): a transaction completed at a client.
    Respond {
        /// The transaction.
        tx: TxId,
    },
    /// `send(m)_{at,to}`: the process emitted a message.
    Send {
        /// Message id.
        msg: MsgId,
        /// Destination process.
        to: ProcessId,
        /// The message (or invocation handler) that causally produced this
        /// send; `None` if it was produced while handling an invocation.
        parent: Option<MsgId>,
        /// Classification of the message.
        info: MsgInfo,
    },
    /// `recv(m)_{from,at}`: the process received a message.
    Recv {
        /// Message id.
        msg: MsgId,
        /// Originating process.
        from: ProcessId,
        /// Classification of the message.
        info: MsgInfo,
    },
}

/// One externally visible action of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    /// Position of the action in the execution (0-based).
    pub seq: u64,
    /// Simulation time at which the action occurred.
    pub time: u64,
    /// The automaton at which the action occurred.
    pub at: ProcessId,
    /// What happened.
    pub kind: ActionKind,
}

impl Action {
    /// The transaction this action belongs to, if it can be attributed.
    pub fn tx(&self) -> Option<TxId> {
        match &self.kind {
            ActionKind::Invoke { tx, .. } | ActionKind::Respond { tx } => Some(*tx),
            ActionKind::Send { info, .. } | ActionKind::Recv { info, .. } => info.tx,
        }
    }
}

/// Per-transaction incrementally maintained statistics.
#[derive(Debug, Clone, Default)]
struct TxIndex {
    /// Indexes into `actions` of this transaction's actions, in order.
    actions: Vec<usize>,
    /// The process at which the transaction's INV occurred.
    invoker: Option<ProcessId>,
    /// Client-to-client sends attributed to this transaction.
    c2c_sends: u32,
    /// Max causal round depth per sending process (tiny: one client plus,
    /// rarely, helpers).
    rounds_by_sender: Vec<(ProcessId, u32)>,
    /// Read-response instrumentation, in receive order at the invoker.
    reads: Vec<ReadResult>,
}

/// The ordered list of external actions of one execution, with incremental
/// per-transaction indexes (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    actions: Vec<Action>,
    /// `MsgId → index of its Send action`.
    send_seq: HashMap<MsgId, usize>,
    /// `MsgId → index of its Recv action`.
    recv_seq: HashMap<MsgId, usize>,
    /// Per-transaction statistics.
    by_tx: HashMap<TxId, TxIndex>,
    /// Per-process action indexes (the projection `trace(α)|p`).
    by_proc: HashMap<ProcessId, Vec<usize>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an action, assigning it the next sequence number and folding
    /// it into the derived indexes.
    pub fn record(&mut self, time: u64, at: ProcessId, kind: ActionKind) {
        let index = self.actions.len();
        let action = Action {
            seq: index as u64,
            time,
            at,
            kind,
        };
        self.index_action(index, &action);
        self.actions.push(action);
    }

    fn index_action(&mut self, index: usize, action: &Action) {
        self.by_proc.entry(action.at).or_default().push(index);
        if let Some(tx) = action.tx() {
            self.by_tx.entry(tx).or_default().actions.push(index);
        }
        match &action.kind {
            ActionKind::Invoke { tx, .. } => {
                self.by_tx.entry(*tx).or_default().invoker = Some(action.at);
            }
            ActionKind::Respond { .. } => {}
            ActionKind::Send { msg, parent, info, .. } => {
                self.send_seq.insert(*msg, index);
                let Some(tx) = info.tx else { return };
                if info.kind == MsgKind::ClientToClient {
                    self.by_tx.entry(tx).or_default().c2c_sends += 1;
                    return;
                }
                // Round depth of this send relative to its sender: 1 plus
                // the number of parent-chain hops that were sends *to* the
                // sender (i.e. responses it was handling).  Parents are
                // always recorded before children, so each hop is an O(1)
                // table lookup and chains are as short as the round count.
                let depth = self.chain_depth(action.at, *parent);
                let entry = self.by_tx.entry(tx).or_default();
                match entry
                    .rounds_by_sender
                    .iter_mut()
                    .find(|(sender, _)| *sender == action.at)
                {
                    Some((_, max)) => *max = (*max).max(depth),
                    None => entry.rounds_by_sender.push((action.at, depth)),
                }
            }
            ActionKind::Recv { msg, from, info } => {
                self.recv_seq.insert(*msg, index);
                let Some(tx) = info.tx else { return };
                if info.kind != MsgKind::ReadResponse {
                    return;
                }
                // Only responses received by the invoking client count as
                // read instrumentation.
                if self.by_tx.get(&tx).and_then(|t| t.invoker) != Some(action.at) {
                    return;
                }
                let Some(object) = info.object else {
                    return; // metadata response (e.g. get-tag-arr)
                };
                let Some(server) = from.as_server() else {
                    return;
                };
                // Non-blocking iff the response's causal parent is a read
                // request of the same transaction (the server answered
                // within the handler of the request, without waiting for
                // any other input action).
                let nonblocking = self
                    .parent_of(*msg)
                    .and_then(|parent| self.send_of(parent))
                    .map(|send| match &send.kind {
                        ActionKind::Send { info: pinfo, .. } => {
                            pinfo.kind == MsgKind::ReadRequest && pinfo.tx == Some(tx)
                        }
                        _ => false,
                    })
                    .unwrap_or(false);
                self.by_tx.entry(tx).or_default().reads.push(ReadResult {
                    object,
                    server,
                    versions_in_response: info.versions.max(1),
                    nonblocking,
                });
            }
        }
    }

    /// Walks a send's causal parent chain, counting `1 +` the hops whose
    /// send was addressed to `sender`.
    fn chain_depth(&self, sender: ProcessId, parent: Option<MsgId>) -> u32 {
        let mut depth = 1u32;
        let mut cur = parent;
        while let Some(p) = cur {
            let Some(send) = self.send_of(p) else { break };
            let ActionKind::Send { to, parent, .. } = &send.kind else {
                break;
            };
            if *to == sender {
                depth += 1;
            }
            cur = *parent;
        }
        depth
    }

    /// All actions in order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of actions recorded.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The actions occurring at one automaton, in order — the projection
    /// `trace(α)|p` the indistinguishability arguments use.
    pub fn at(&self, p: ProcessId) -> Vec<&Action> {
        self.by_proc
            .get(&p)
            .map(|indexes| indexes.iter().map(|&i| &self.actions[i]).collect())
            .unwrap_or_default()
    }

    /// The actions attributable to one transaction, in order.
    pub fn of_tx(&self, tx: TxId) -> Vec<&Action> {
        self.by_tx
            .get(&tx)
            .map(|t| t.actions.iter().map(|&i| &self.actions[i]).collect())
            .unwrap_or_default()
    }

    /// Finds the send action for a given message id — O(1).
    pub fn send_of(&self, msg: MsgId) -> Option<&Action> {
        self.send_seq.get(&msg).map(|&i| &self.actions[i])
    }

    /// Finds the receive action for a given message id — O(1).
    pub fn recv_of(&self, msg: MsgId) -> Option<&Action> {
        self.recv_seq.get(&msg).map(|&i| &self.actions[i])
    }

    /// The causal parent of a message: the message whose handler sent it —
    /// O(1).
    pub fn parent_of(&self, msg: MsgId) -> Option<MsgId> {
        self.send_of(msg).and_then(|a| match &a.kind {
            ActionKind::Send { parent, .. } => *parent,
            _ => None,
        })
    }

    /// Number of client-to-client messages attributed to `tx` — O(1).
    pub fn c2c_count(&self, tx: TxId) -> u32 {
        self.by_tx.get(&tx).map(|t| t.c2c_sends).unwrap_or(0)
    }

    /// The number of client↔server round trips transaction `tx` used,
    /// derived purely from causality: a send by the client whose parent
    /// chain passes through `d` prior server responses belongs to round
    /// `d + 1`.  O(1): depths are accumulated at record time.
    pub fn rounds_of(&self, tx: TxId, client: ProcessId) -> u32 {
        self.by_tx
            .get(&tx)
            .and_then(|t| {
                t.rounds_by_sender
                    .iter()
                    .find(|(sender, _)| *sender == client)
                    .map(|(_, depth)| *depth)
            })
            .unwrap_or(0)
    }

    /// Read-response instrumentation for `tx`: one [`ReadResult`] per
    /// response received by the invoking client, in receive order —
    /// O(answer).
    pub fn read_results(&self, tx: TxId) -> &[ReadResult] {
        self.by_tx
            .get(&tx)
            .map(|t| t.reads.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_core::{ClientId, ObjectId, ServerId};

    fn client(i: u32) -> ProcessId {
        ProcessId::Client(ClientId(i))
    }
    fn server(i: u32) -> ProcessId {
        ProcessId::Server(ServerId(i))
    }

    /// Builds a small two-round trace:
    ///  c0: INV(tx1), send m0 -> s0 (round 1)
    ///  s0: recv m0, send m1 -> c0
    ///  c0: recv m1, send m2 -> s1 (round 2, parent m1)
    ///  s1: recv m2, send m3 -> c0
    ///  c0: recv m3, RESP(tx1)
    fn two_round_trace() -> Trace {
        let tx = TxId(1);
        let mut t = Trace::new();
        t.record(0, client(0), ActionKind::Invoke { tx, kind: TxKind::Read });
        t.record(
            1,
            client(0),
            ActionKind::Send {
                msg: MsgId(0),
                to: server(0),
                parent: None,
                info: MsgInfo::read_request(tx, Some(ObjectId(0))),
            },
        );
        t.record(
            2,
            server(0),
            ActionKind::Recv {
                msg: MsgId(0),
                from: client(0),
                info: MsgInfo::read_request(tx, Some(ObjectId(0))),
            },
        );
        t.record(
            3,
            server(0),
            ActionKind::Send {
                msg: MsgId(1),
                to: client(0),
                parent: Some(MsgId(0)),
                info: MsgInfo::read_response(tx, Some(ObjectId(0)), 1),
            },
        );
        t.record(
            4,
            client(0),
            ActionKind::Recv {
                msg: MsgId(1),
                from: server(0),
                info: MsgInfo::read_response(tx, Some(ObjectId(0)), 1),
            },
        );
        t.record(
            5,
            client(0),
            ActionKind::Send {
                msg: MsgId(2),
                to: server(1),
                parent: Some(MsgId(1)),
                info: MsgInfo::read_request(tx, Some(ObjectId(1))),
            },
        );
        t.record(
            6,
            server(1),
            ActionKind::Recv {
                msg: MsgId(2),
                from: client(0),
                info: MsgInfo::read_request(tx, Some(ObjectId(1))),
            },
        );
        t.record(
            7,
            server(1),
            ActionKind::Send {
                msg: MsgId(3),
                to: client(0),
                parent: Some(MsgId(2)),
                info: MsgInfo::read_response(tx, Some(ObjectId(1)), 1),
            },
        );
        t.record(
            8,
            client(0),
            ActionKind::Recv {
                msg: MsgId(3),
                from: server(1),
                info: MsgInfo::read_response(tx, Some(ObjectId(1)), 1),
            },
        );
        t.record(9, client(0), ActionKind::Respond { tx });
        t
    }

    #[test]
    fn projections_and_lookup() {
        let t = two_round_trace();
        assert_eq!(t.len(), 10);
        assert!(!t.is_empty());
        assert_eq!(t.at(client(0)).len(), 6);
        assert_eq!(t.at(server(0)).len(), 2);
        assert_eq!(t.of_tx(TxId(1)).len(), 10);
        assert_eq!(t.of_tx(TxId(9)).len(), 0);
        assert!(t.send_of(MsgId(2)).is_some());
        assert!(t.recv_of(MsgId(3)).is_some());
        assert_eq!(t.parent_of(MsgId(2)), Some(MsgId(1)));
        assert_eq!(t.parent_of(MsgId(0)), None);
    }

    #[test]
    fn projections_preserve_action_order() {
        let t = two_round_trace();
        let seqs: Vec<u64> = t.at(client(0)).iter().map(|a| a.seq).collect();
        assert_eq!(seqs, vec![0, 1, 4, 5, 8, 9]);
        let tx_seqs: Vec<u64> = t.of_tx(TxId(1)).iter().map(|a| a.seq).collect();
        assert_eq!(tx_seqs, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn round_counting_follows_causality() {
        let t = two_round_trace();
        // m0 is round 1; m2's parent chain passes through m1 (a response to
        // the client), so it is round 2.
        assert_eq!(t.rounds_of(TxId(1), client(0)), 2);
        assert_eq!(t.rounds_of(TxId(9), client(0)), 0);
        // Server sends count rounds relative to themselves: m1's parent m0
        // was addressed to s0, so s0's send depth is 2 (same as the
        // historical scan-based computation).
        assert_eq!(t.rounds_of(TxId(1), server(0)), 2);
    }

    #[test]
    fn c2c_counting() {
        let mut t = two_round_trace();
        assert_eq!(t.c2c_count(TxId(1)), 0);
        t.record(
            10,
            client(1),
            ActionKind::Send {
                msg: MsgId(4),
                to: client(0),
                parent: None,
                info: MsgInfo::client_to_client(Some(TxId(1))),
            },
        );
        assert_eq!(t.c2c_count(TxId(1)), 1);
    }

    #[test]
    fn read_results_accumulate_at_the_invoker() {
        let t = two_round_trace();
        let reads = t.read_results(TxId(1));
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].object, ObjectId(0));
        assert_eq!(reads[0].server, ServerId(0));
        assert!(reads[0].nonblocking, "parent is the read request itself");
        assert_eq!(reads[1].object, ObjectId(1));
        assert_eq!(reads[1].server, ServerId(1));
        assert_eq!(reads[1].versions_in_response, 1);
        assert!(t.read_results(TxId(9)).is_empty());
    }

    #[test]
    fn action_tx_attribution() {
        let t = two_round_trace();
        assert_eq!(t.actions()[0].tx(), Some(TxId(1)));
        assert_eq!(t.actions()[9].tx(), Some(TxId(1)));
    }
}
