//! Action traces: the external actions of an execution, in order.
//!
//! A [`Trace`] is the executable analogue of the paper's executions
//! `σ₀, a₁, σ₁, …`: we record only the actions (the paper does the same to
//! "simplify notation"), each tagged with the automaton at which it occurs,
//! the simulation time, and — for sends — the causal parent message.
//!
//! # Incremental indexes
//!
//! Derived quantities are maintained *as actions are recorded*, so the
//! per-transaction queries the history assembly needs are O(1)/O(answer)
//! instead of O(actions) rescans:
//!
//! * `MsgId → send/recv action` lookup tables make [`Trace::send_of`],
//!   [`Trace::recv_of`] and [`Trace::parent_of`] O(1);
//! * per-transaction counters accumulate C2C sends, round depths (the causal
//!   parent-chain walk runs at record time, each hop now O(1)), and the
//!   [`ReadResult`] instrumentation of read responses received by the
//!   invoking client;
//! * per-transaction and per-process action lists back [`Trace::of_tx`] and
//!   [`Trace::at`] without scanning.
//!
//! With these indexes, [`crate::Simulation::history`] is a single pass over
//! the recorded transactions rather than O(transactions × actions).
//!
//! Read-response instrumentation requires the transaction's `Invoke` action
//! to be recorded before its message actions (always true for engine-driven
//! traces; hand-built traces must follow the same order).
//!
//! # Bounded action logs
//!
//! For million-transaction workloads the raw action log dominates memory.
//! [`Trace::with_action_capacity`] bounds it: only a sliding window of
//! recent actions is retained (at least `capacity`, at most `2 × capacity`
//! so eviction amortizes to O(1)), while every incremental aggregate —
//! round depths, C2C counts, read instrumentation — is maintained from a
//! compact per-message side table (`SendMeta`) and therefore stays
//! *exactly* equal to the unbounded trace's.  In bounded mode that side
//! table is itself pruned per transaction at RESP, so total memory is
//! O(window + in-flight) rather than O(messages): by the time a
//! transaction responds, every aggregate its invoker contributes to a
//! [`snow_core::History`] is final — a client's causal parent chains never
//! leave its own transaction, and the non-blocking verdict of a read
//! response only inspects the response's immediate parent, which is
//! recorded before the RESP.  Queries over evicted actions
//! ([`Trace::send_of`], [`Trace::recv_of`], [`Trace::at`],
//! [`Trace::of_tx`]) simply omit them, and [`Trace::parent_of`] forgets
//! links of completed transactions.

use crate::message::{MsgId, MsgInfo, MsgKind};
use snow_core::{ProcessId, ReadResult, TxId, TxKind};
use snow_core::FxHashMap;
use std::collections::VecDeque;

/// The kind of an externally visible action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionKind {
    /// INV(T): a transaction was invoked at a client.
    Invoke {
        /// The transaction.
        tx: TxId,
        /// READ or WRITE.
        kind: TxKind,
    },
    /// RESP(T): a transaction completed at a client.
    Respond {
        /// The transaction.
        tx: TxId,
    },
    /// `send(m)_{at,to}`: the process emitted a message.
    Send {
        /// Message id.
        msg: MsgId,
        /// Destination process.
        to: ProcessId,
        /// The message (or invocation handler) that causally produced this
        /// send; `None` if it was produced while handling an invocation.
        parent: Option<MsgId>,
        /// Classification of the message.
        info: MsgInfo,
    },
    /// `recv(m)_{from,at}`: the process received a message.
    Recv {
        /// Message id.
        msg: MsgId,
        /// Originating process.
        from: ProcessId,
        /// Classification of the message.
        info: MsgInfo,
    },
}

/// One externally visible action of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    /// Position of the action in the execution (0-based).
    pub seq: u64,
    /// Simulation time at which the action occurred.
    pub time: u64,
    /// The automaton at which the action occurred.
    pub at: ProcessId,
    /// What happened.
    pub kind: ActionKind,
}

impl Action {
    /// The transaction this action belongs to, if it can be attributed.
    pub fn tx(&self) -> Option<TxId> {
        match &self.kind {
            ActionKind::Invoke { tx, .. } | ActionKind::Respond { tx } => Some(*tx),
            ActionKind::Send { info, .. } | ActionKind::Recv { info, .. } => info.tx,
        }
    }
}

/// Per-transaction incrementally maintained statistics.
#[derive(Debug, Clone, Default)]
struct TxIndex {
    /// Sequence numbers of this transaction's actions, in order (front
    /// entries are dropped as the ring evicts them).
    actions: VecDeque<u64>,
    /// The process at which the transaction's INV occurred.
    invoker: Option<ProcessId>,
    /// Client-to-client sends attributed to this transaction.
    c2c_sends: u32,
    /// Max causal round depth per sending process (tiny: one client plus,
    /// rarely, helpers).
    rounds_by_sender: Vec<(ProcessId, u32)>,
    /// Read-response instrumentation, in receive order at the invoker.
    reads: Vec<ReadResult>,
    /// Message ids sent on behalf of this transaction — tracked only in
    /// bounded mode, so their [`SendMeta`] entries can be pruned at RESP.
    msgs: Vec<MsgId>,
    /// True once the transaction's RESP was recorded (bounded mode prunes
    /// the causal metadata of its post-RESP straggler traffic on delivery).
    responded: bool,
}

/// Compact record-time metadata of one send: everything the causal
/// derivations (round depth, non-blocking verdict, parent links) need,
/// independent of whether the full `Send` action is still retained.
#[derive(Debug, Clone)]
struct SendMeta {
    to: ProcessId,
    kind: MsgKind,
    tx: Option<TxId>,
    origin: MetaOrigin,
}

/// Where a send's causal metadata came from.
#[derive(Debug, Clone)]
enum MetaOrigin {
    /// The send was recorded by this trace; its causal ancestors are
    /// reachable by walking `parent` links through `send_meta`.
    Local {
        /// The message whose handler produced this send, if any.
        parent: Option<MsgId>,
    },
    /// The send happened in *another* trace (a different shard of a
    /// parallel simulation) and arrived here through
    /// [`Trace::import_envelope`].  The ancestor chain is not locally
    /// walkable, so the envelope carries its pre-folded summary instead.
    Imported {
        /// Destination counts over the message's whole ancestor chain,
        /// **including the message's own destination** — the summary
        /// [`Trace::chain_depth`] needs to finish a walk that crosses a
        /// shard boundary.
        dests: Box<[(ProcessId, u32)]>,
        /// Classification of the causal parent, for the non-blocking
        /// verdict of read responses.
        parent_kind: Option<MsgKind>,
        /// Transaction attribution of the causal parent.
        parent_tx: Option<TxId>,
    },
}

/// The causal metadata of one message in transit between two traces: what a
/// sharded engine ships alongside a cross-shard [`crate::PendingMessage`] so
/// the receiving shard's trace can derive the same round counts and
/// non-blocking verdicts the sending shard would have.  Produce with
/// [`Trace::export_envelope`], consume with [`Trace::import_envelope`].
#[derive(Debug, Clone)]
pub struct CausalEnvelope {
    /// Destination of the message itself.
    pub to: ProcessId,
    /// Classification of the message.
    pub kind: MsgKind,
    /// Transaction attribution of the message.
    pub tx: Option<TxId>,
    /// Destination counts over the message and all its causal ancestors
    /// (the message's own destination included).
    pub dests: Vec<(ProcessId, u32)>,
    /// Classification of the causal parent, if the sending trace knew it.
    pub parent_kind: Option<MsgKind>,
    /// Transaction attribution of the causal parent.
    pub parent_tx: Option<TxId>,
}

/// The ordered list of external actions of one execution, with incremental
/// per-transaction indexes (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Retained actions; a sliding window of the full log when a capacity
    /// is set, the full log otherwise.
    actions: Vec<Action>,
    /// Sequence number of `actions[0]` (> 0 once evictions happened).
    base_seq: u64,
    /// Total number of actions ever recorded.
    recorded: u64,
    /// Retained-action cap (`None` = unbounded).
    capacity: Option<usize>,
    /// `MsgId → seq of its Send action`.
    send_seq: FxHashMap<MsgId, u64>,
    /// `MsgId → seq of its Recv action`.
    recv_seq: FxHashMap<MsgId, u64>,
    /// `MsgId → send metadata` (kept across evictions; see [`SendMeta`]).
    send_meta: FxHashMap<MsgId, SendMeta>,
    /// Per-transaction statistics.
    by_tx: FxHashMap<TxId, TxIndex>,
    /// Per-process action seqs (the projection `trace(α)|p`).
    by_proc: FxHashMap<ProcessId, VecDeque<u64>>,
    /// Commit log: transactions in RESP order, minus the prefix already
    /// retired by [`Trace::retire_commits`].  `commits[0]` is commit
    /// number `commits_retired`.
    commits: VecDeque<TxId>,
    /// Number of commit-log entries retired so far.
    commits_retired: u64,
    /// Highest action time recorded so far — backs the debug-mode
    /// monotonicity assertion in [`Trace::record`].
    last_time: u64,
}

impl Trace {
    /// Creates an empty trace retaining every action.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace that retains a bounded sliding window of
    /// recent actions: always the most recent `capacity`, never more than
    /// `2 × capacity` (eviction is batched so recording stays amortized
    /// O(1)).  All incremental aggregates — round depths, C2C counts, read
    /// instrumentation — are unaffected by eviction and match the
    /// unbounded trace exactly; only the raw-action queries forget evicted
    /// history.
    ///
    /// The compact per-message causality table backing those aggregates
    /// (~40 B per send) is pruned per transaction at its RESP, so total
    /// memory is O(window + in-flight messages) rather than O(messages).
    /// Consequently [`Trace::parent_of`] only answers for messages of
    /// still-in-flight transactions (and for unattributable control
    /// traffic, which is never pruned).
    pub fn with_action_capacity(capacity: usize) -> Self {
        Trace {
            capacity: Some(capacity),
            ..Trace::default()
        }
    }

    /// The retained-action cap, if one was set.
    pub fn action_capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Appends an action, assigning it the next sequence number and folding
    /// it into the derived indexes.
    pub fn record(&mut self, time: u64, at: ProcessId, kind: ActionKind) {
        // The real-time precedence edges the checkers derive are only
        // trustworthy if recorded action times never regress — the engine's
        // clock clamp guarantees it; this assertion keeps it audited.
        debug_assert!(
            time >= self.last_time,
            "non-monotone trace timestamp: recording {time} after {}",
            self.last_time
        );
        self.last_time = time;
        let seq = self.recorded;
        self.recorded += 1;
        let action = Action { seq, time, at, kind };
        self.index_action(seq, &action);
        self.actions.push(action);
        if let Some(cap) = self.capacity {
            // Amortized O(1): let the buffer grow to 2× the cap, then slide
            // the window in one drain.
            if self.actions.len() > cap.saturating_mul(2).max(1) {
                let excess = self.actions.len() - cap;
                self.evict(excess);
            }
        }
    }

    /// Drops the `count` oldest retained actions and their index entries.
    fn evict(&mut self, count: usize) {
        for action in self.actions.drain(..count) {
            match &action.kind {
                ActionKind::Send { msg, .. } => {
                    self.send_seq.remove(msg);
                }
                ActionKind::Recv { msg, .. } => {
                    self.recv_seq.remove(msg);
                }
                _ => {}
            }
            if let Some(list) = self.by_proc.get_mut(&action.at) {
                if list.front() == Some(&action.seq) {
                    list.pop_front();
                }
            }
            if let Some(tx) = action.tx() {
                if let Some(index) = self.by_tx.get_mut(&tx) {
                    if index.actions.front() == Some(&action.seq) {
                        index.actions.pop_front();
                    }
                }
            }
        }
        self.base_seq += count as u64;
    }

    /// The retained action with sequence number `seq`, if not evicted.
    fn action_at(&self, seq: u64) -> Option<&Action> {
        seq.checked_sub(self.base_seq)
            .and_then(|i| self.actions.get(i as usize))
    }

    fn index_action(&mut self, seq: u64, action: &Action) {
        self.by_proc.entry(action.at).or_default().push_back(seq);
        if let Some(tx) = action.tx() {
            self.by_tx.entry(tx).or_default().actions.push_back(seq);
        }
        match &action.kind {
            ActionKind::Invoke { tx, .. } => {
                self.by_tx.entry(*tx).or_default().invoker = Some(action.at);
            }
            ActionKind::Respond { tx } => {
                self.commits.push_back(*tx);
                // Bounded mode: the transaction is over, so its causal
                // metadata can no longer influence any aggregate its
                // invoker cares about — drop it, keeping the side table
                // O(in-flight) instead of O(messages).  Straggler traffic
                // attributed to this transaction after its RESP is pruned
                // on delivery (see the `Recv` arm).
                if let Some(index) = self.by_tx.get_mut(tx) {
                    index.responded = true;
                    if self.capacity.is_some() {
                        for msg in index.msgs.drain(..) {
                            self.send_meta.remove(&msg);
                        }
                    }
                }
            }
            ActionKind::Send { msg, parent, info, to } => {
                self.send_seq.insert(*msg, seq);
                self.send_meta.insert(
                    *msg,
                    SendMeta {
                        to: *to,
                        kind: info.kind,
                        tx: info.tx,
                        origin: MetaOrigin::Local { parent: *parent },
                    },
                );
                if self.capacity.is_some() {
                    if let Some(tx) = info.tx {
                        self.by_tx.entry(tx).or_default().msgs.push(*msg);
                    }
                }
                let Some(tx) = info.tx else { return };
                if info.kind == MsgKind::ClientToClient {
                    self.by_tx.entry(tx).or_default().c2c_sends += 1;
                    return;
                }
                // Round depth of this send relative to its sender: 1 plus
                // the number of parent-chain hops that were sends *to* the
                // sender (i.e. responses it was handling).  Parents are
                // always recorded before children, so each hop is an O(1)
                // table lookup and chains are as short as the round count.
                let depth = self.chain_depth(action.at, *parent);
                let entry = self.by_tx.entry(tx).or_default();
                match entry
                    .rounds_by_sender
                    .iter_mut()
                    .find(|(sender, _)| *sender == action.at)
                {
                    Some((_, max)) => *max = (*max).max(depth),
                    None => entry.rounds_by_sender.push((action.at, depth)),
                }
            }
            ActionKind::Recv { msg, from, info } => {
                self.recv_seq.insert(*msg, seq);
                self.index_read_response(action.at, *msg, *from, info);
                // Bounded mode: a delivered message no future RESP will
                // prune — unattributable control traffic, or a straggler of
                // an already-responded transaction — would leak its causal
                // metadata forever; drop it at delivery instead.  (Current
                // protocols address control messages only to servers and
                // emit no post-RESP traffic on hot paths, so the consumed
                // aggregates are unaffected — guarded by the bounded-vs-
                // unbounded workload tests across every protocol.)  The
                // sharded engine prunes one more class — deliveries of
                // transactions invoked on another shard — via
                // [`Trace::prune_meta`] *after* the delivery's handler
                // runs, so the handler's own sends still fold the chain.
                if self.capacity.is_some() {
                    let prunable = match info.tx {
                        None => true,
                        Some(tx) => {
                            self.by_tx.get(&tx).map(|t| t.responded).unwrap_or(false)
                        }
                    };
                    if prunable {
                        self.send_meta.remove(msg);
                    }
                }
            }
        }
    }

    /// Folds a received read response into the invoker's instrumentation.
    fn index_read_response(&mut self, at: ProcessId, msg: MsgId, from: ProcessId, info: &MsgInfo) {
        let Some(tx) = info.tx else { return };
        if info.kind != MsgKind::ReadResponse {
            return;
        }
        // Only responses received by the invoking client count as
        // read instrumentation.
        if self.by_tx.get(&tx).and_then(|t| t.invoker) != Some(at) {
            return;
        }
        let Some(object) = info.object else {
            return; // metadata response (e.g. get-tag-arr)
        };
        let Some(server) = from.as_server() else {
            return;
        };
        // Non-blocking iff the response's causal parent is a read
        // request of the same transaction (the server answered
        // within the handler of the request, without waiting for
        // any other input action).  For a response that crossed a shard
        // boundary the parent lives in the sending shard's trace, so the
        // imported envelope carries the parent's classification instead.
        let nonblocking = match self.send_meta.get(&msg).map(|m| &m.origin) {
            Some(MetaOrigin::Imported { parent_kind, parent_tx, .. }) => {
                *parent_kind == Some(MsgKind::ReadRequest) && *parent_tx == Some(tx)
            }
            _ => self
                .parent_of(msg)
                .and_then(|parent| self.send_meta.get(&parent))
                .map(|meta| meta.kind == MsgKind::ReadRequest && meta.tx == Some(tx))
                .unwrap_or(false),
        };
        self.by_tx.entry(tx).or_default().reads.push(ReadResult {
            object,
            server,
            versions_in_response: info.versions.max(1),
            nonblocking,
        });
    }

    /// Walks a send's causal parent chain, counting `1 +` the hops whose
    /// send was addressed to `sender`.  A hop whose metadata was imported
    /// from another shard carries its whole remaining chain pre-folded
    /// (destination counts), so the walk finishes there in O(1).
    fn chain_depth(&self, sender: ProcessId, parent: Option<MsgId>) -> u32 {
        let mut depth = 1u32;
        let mut cur = parent;
        while let Some(p) = cur {
            let Some(meta) = self.send_meta.get(&p) else { break };
            match &meta.origin {
                MetaOrigin::Local { parent } => {
                    if meta.to == sender {
                        depth += 1;
                    }
                    cur = *parent;
                }
                MetaOrigin::Imported { dests, .. } => {
                    // `dests` already includes the hop's own destination.
                    depth += dests
                        .iter()
                        .find(|(d, _)| *d == sender)
                        .map(|(_, c)| *c)
                        .unwrap_or(0);
                    break;
                }
            }
        }
        depth
    }

    /// Folds the destination counts of `msg`'s causal chain (its own
    /// destination included) into `counts`, finishing in O(1) at any hop
    /// whose metadata was itself imported.
    fn fold_chain_dests(&self, msg: MsgId, counts: &mut Vec<(ProcessId, u32)>) {
        let mut bump = |dest: ProcessId, by: u32| {
            match counts.iter_mut().find(|(d, _)| *d == dest) {
                Some((_, c)) => *c += by,
                None => counts.push((dest, by)),
            }
        };
        let mut cur = Some(msg);
        while let Some(p) = cur {
            let Some(meta) = self.send_meta.get(&p) else { break };
            match &meta.origin {
                MetaOrigin::Local { parent } => {
                    bump(meta.to, 1);
                    cur = *parent;
                }
                MetaOrigin::Imported { dests, .. } => {
                    for (d, c) in dests.iter() {
                        bump(*d, *c);
                    }
                    break;
                }
            }
        }
    }

    /// Exports the causal metadata of a send this trace recorded, for
    /// shipping alongside a cross-shard message.  Returns `None` if the
    /// send's metadata is unknown (never recorded, or already pruned in
    /// bounded mode — the importing side then treats the message as
    /// causally opaque, exactly as a bounded trace's broken chain does).
    pub fn export_envelope(&self, msg: MsgId) -> Option<CausalEnvelope> {
        let meta = self.send_meta.get(&msg)?;
        let mut dests = Vec::new();
        self.fold_chain_dests(msg, &mut dests);
        let (parent_kind, parent_tx) = match &meta.origin {
            MetaOrigin::Local { parent } => parent
                .and_then(|p| self.send_meta.get(&p))
                .map(|pm| (Some(pm.kind), pm.tx))
                .unwrap_or((None, None)),
            MetaOrigin::Imported { parent_kind, parent_tx, .. } => (*parent_kind, *parent_tx),
        };
        Some(CausalEnvelope {
            to: meta.to,
            kind: meta.kind,
            tx: meta.tx,
            dests,
            parent_kind,
            parent_tx,
        })
    }

    /// Bounded mode only: drops the causal metadata of one message — the
    /// sharded engine's two extra pruning points, keeping a bounded
    /// shard's table O(in-flight) even though RESP-time pruning only ever
    /// fires on the invoking client's shard:
    ///
    /// * a send whose message **departed** to another shard (its envelope
    ///   was exported): it can never be the causal parent of a local send
    ///   — parents are assigned while handling a delivery, and this
    ///   message will be delivered (envelope re-imported) elsewhere;
    /// * a delivered message of a transaction **invoked on another
    ///   shard**, pruned *after* its handler's effects were applied (the
    ///   handler's own sends fold the chain first); no local RESP will
    ///   ever prune it, and only the invoker's shard derives read/round
    ///   aggregates from it.
    ///
    /// No-op on unbounded traces, which keep every meta for retrospective
    /// [`Trace::parent_of`] queries.
    pub fn prune_meta(&mut self, msg: MsgId) {
        if self.capacity.is_some() {
            self.send_meta.remove(&msg);
        }
    }

    /// Imports the causal metadata of a message sent by another trace, so
    /// that this trace can derive round depths and non-blocking verdicts
    /// for deliveries of (and sends caused by) `msg`.  In bounded mode the
    /// imported entry joins the same pruning regime as local sends: dropped
    /// at the attributed transaction's RESP, or at delivery for
    /// control/straggler traffic.
    pub fn import_envelope(&mut self, msg: MsgId, envelope: CausalEnvelope) {
        if self.capacity.is_some() {
            if let Some(tx) = envelope.tx {
                self.by_tx.entry(tx).or_default().msgs.push(msg);
            }
        }
        self.send_meta.insert(
            msg,
            SendMeta {
                to: envelope.to,
                kind: envelope.kind,
                tx: envelope.tx,
                origin: MetaOrigin::Imported {
                    dests: envelope.dests.into_boxed_slice(),
                    parent_kind: envelope.parent_kind,
                    parent_tx: envelope.parent_tx,
                },
            },
        );
    }

    /// The retained actions in order: the full log for an unbounded trace,
    /// the most recent window for a bounded one.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of actions recorded (including any evicted from a bounded
    /// trace's window).
    pub fn len(&self) -> usize {
        self.recorded as usize
    }

    /// Number of actions evicted from a bounded trace's window.
    pub fn evicted_len(&self) -> usize {
        self.base_seq as usize
    }

    /// Number of per-message causality entries currently held.  Unbounded
    /// traces keep one per send; bounded traces prune a transaction's
    /// entries at its RESP, so this tracks the in-flight population.
    pub fn causal_meta_len(&self) -> usize {
        self.send_meta.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// The retained actions occurring at one automaton, in order — the
    /// projection `trace(α)|p` the indistinguishability arguments use.
    pub fn at(&self, p: ProcessId) -> Vec<&Action> {
        self.by_proc
            .get(&p)
            .map(|seqs| seqs.iter().filter_map(|&s| self.action_at(s)).collect())
            .unwrap_or_default()
    }

    /// The retained actions attributable to one transaction, in order.
    pub fn of_tx(&self, tx: TxId) -> Vec<&Action> {
        self.by_tx
            .get(&tx)
            .map(|t| t.actions.iter().filter_map(|&s| self.action_at(s)).collect())
            .unwrap_or_default()
    }

    /// Finds the send action for a given message id — O(1).  `None` if the
    /// message is unknown or its send action was evicted.
    pub fn send_of(&self, msg: MsgId) -> Option<&Action> {
        self.send_seq.get(&msg).and_then(|&s| self.action_at(s))
    }

    /// Finds the receive action for a given message id — O(1).  `None` if
    /// the message is unknown or its receive action was evicted.
    pub fn recv_of(&self, msg: MsgId) -> Option<&Action> {
        self.recv_seq.get(&msg).and_then(|&s| self.action_at(s))
    }

    /// The causal parent of a message: the message whose handler sent it —
    /// O(1).  Parent links survive action eviction in unbounded traces;
    /// bounded traces forget them for completed transactions (pruned at
    /// RESP) and for delivered control/straggler messages (pruned at
    /// delivery).  Messages whose metadata was imported from another shard
    /// report no parent (the parent lives in the sending shard's trace).
    pub fn parent_of(&self, msg: MsgId) -> Option<MsgId> {
        match self.send_meta.get(&msg).map(|m| &m.origin) {
            Some(MetaOrigin::Local { parent }) => *parent,
            _ => None,
        }
    }

    /// Number of client-to-client messages attributed to `tx` — O(1).
    pub fn c2c_count(&self, tx: TxId) -> u32 {
        self.by_tx.get(&tx).map(|t| t.c2c_sends).unwrap_or(0)
    }

    /// The number of client↔server round trips transaction `tx` used,
    /// derived purely from causality: a send by the client whose parent
    /// chain passes through `d` prior server responses belongs to round
    /// `d + 1`.  O(1): depths are accumulated at record time.
    pub fn rounds_of(&self, tx: TxId, client: ProcessId) -> u32 {
        self.by_tx
            .get(&tx)
            .and_then(|t| {
                t.rounds_by_sender
                    .iter()
                    .find(|(sender, _)| *sender == client)
                    .map(|(_, depth)| *depth)
            })
            .unwrap_or(0)
    }

    /// Read-response instrumentation for `tx`: one [`ReadResult`] per
    /// response received by the invoking client, in receive order —
    /// O(answer).
    pub fn read_results(&self, tx: TxId) -> &[ReadResult] {
        self.by_tx
            .get(&tx)
            .map(|t| t.reads.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of transaction commits (RESP actions) ever recorded,
    /// including retired commit-log entries.
    pub fn commit_count(&self) -> u64 {
        self.commits_retired + self.commits.len() as u64
    }

    /// Number of commit-log entries retired by [`Trace::retire_commits`]
    /// — the commit number of the oldest live entry.
    pub fn retired_commits(&self) -> u64 {
        self.commits_retired
    }

    /// Iterates the live commit-log entries from commit number `cursor`
    /// on, in RESP order, without cloning anything — the incremental
    /// alternative to re-assembling a full history per checker poll.
    /// Already-retired entries are omitted (a `cursor` below
    /// [`Trace::retired_commits`] starts at the oldest live entry).
    pub fn commits_since(&self, cursor: u64) -> impl Iterator<Item = TxId> + '_ {
        let skip = cursor.saturating_sub(self.commits_retired) as usize;
        self.commits.iter().skip(skip).copied()
    }

    /// Retires every commit-log entry before commit number `up_to`,
    /// dropping their storage.  Callers that have drained a prefix via
    /// [`Trace::commits_since`] retire it here so the live log stays
    /// O(in-flight drain window) instead of O(transactions).
    pub fn retire_commits(&mut self, up_to: u64) {
        while self.commits_retired < up_to {
            if self.commits.pop_front().is_none() {
                break;
            }
            self.commits_retired += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_core::{ClientId, ObjectId, ServerId};

    fn client(i: u32) -> ProcessId {
        ProcessId::Client(ClientId(i))
    }
    fn server(i: u32) -> ProcessId {
        ProcessId::Server(ServerId(i))
    }

    /// Builds a small two-round trace:
    ///  c0: INV(tx1), send m0 -> s0 (round 1)
    ///  s0: recv m0, send m1 -> c0
    ///  c0: recv m1, send m2 -> s1 (round 2, parent m1)
    ///  s1: recv m2, send m3 -> c0
    ///  c0: recv m3, RESP(tx1)
    fn two_round_trace() -> Trace {
        let tx = TxId(1);
        let mut t = Trace::new();
        t.record(0, client(0), ActionKind::Invoke { tx, kind: TxKind::Read });
        t.record(
            1,
            client(0),
            ActionKind::Send {
                msg: MsgId(0),
                to: server(0),
                parent: None,
                info: MsgInfo::read_request(tx, Some(ObjectId(0))),
            },
        );
        t.record(
            2,
            server(0),
            ActionKind::Recv {
                msg: MsgId(0),
                from: client(0),
                info: MsgInfo::read_request(tx, Some(ObjectId(0))),
            },
        );
        t.record(
            3,
            server(0),
            ActionKind::Send {
                msg: MsgId(1),
                to: client(0),
                parent: Some(MsgId(0)),
                info: MsgInfo::read_response(tx, Some(ObjectId(0)), 1),
            },
        );
        t.record(
            4,
            client(0),
            ActionKind::Recv {
                msg: MsgId(1),
                from: server(0),
                info: MsgInfo::read_response(tx, Some(ObjectId(0)), 1),
            },
        );
        t.record(
            5,
            client(0),
            ActionKind::Send {
                msg: MsgId(2),
                to: server(1),
                parent: Some(MsgId(1)),
                info: MsgInfo::read_request(tx, Some(ObjectId(1))),
            },
        );
        t.record(
            6,
            server(1),
            ActionKind::Recv {
                msg: MsgId(2),
                from: client(0),
                info: MsgInfo::read_request(tx, Some(ObjectId(1))),
            },
        );
        t.record(
            7,
            server(1),
            ActionKind::Send {
                msg: MsgId(3),
                to: client(0),
                parent: Some(MsgId(2)),
                info: MsgInfo::read_response(tx, Some(ObjectId(1)), 1),
            },
        );
        t.record(
            8,
            client(0),
            ActionKind::Recv {
                msg: MsgId(3),
                from: server(1),
                info: MsgInfo::read_response(tx, Some(ObjectId(1)), 1),
            },
        );
        t.record(9, client(0), ActionKind::Respond { tx });
        t
    }

    #[test]
    fn projections_and_lookup() {
        let t = two_round_trace();
        assert_eq!(t.len(), 10);
        assert!(!t.is_empty());
        assert_eq!(t.at(client(0)).len(), 6);
        assert_eq!(t.at(server(0)).len(), 2);
        assert_eq!(t.of_tx(TxId(1)).len(), 10);
        assert_eq!(t.of_tx(TxId(9)).len(), 0);
        assert!(t.send_of(MsgId(2)).is_some());
        assert!(t.recv_of(MsgId(3)).is_some());
        assert_eq!(t.parent_of(MsgId(2)), Some(MsgId(1)));
        assert_eq!(t.parent_of(MsgId(0)), None);
    }

    #[test]
    fn projections_preserve_action_order() {
        let t = two_round_trace();
        let seqs: Vec<u64> = t.at(client(0)).iter().map(|a| a.seq).collect();
        assert_eq!(seqs, vec![0, 1, 4, 5, 8, 9]);
        let tx_seqs: Vec<u64> = t.of_tx(TxId(1)).iter().map(|a| a.seq).collect();
        assert_eq!(tx_seqs, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn round_counting_follows_causality() {
        let t = two_round_trace();
        // m0 is round 1; m2's parent chain passes through m1 (a response to
        // the client), so it is round 2.
        assert_eq!(t.rounds_of(TxId(1), client(0)), 2);
        assert_eq!(t.rounds_of(TxId(9), client(0)), 0);
        // Server sends count rounds relative to themselves: m1's parent m0
        // was addressed to s0, so s0's send depth is 2 (same as the
        // historical scan-based computation).
        assert_eq!(t.rounds_of(TxId(1), server(0)), 2);
    }

    #[test]
    fn c2c_counting() {
        let mut t = two_round_trace();
        assert_eq!(t.c2c_count(TxId(1)), 0);
        t.record(
            10,
            client(1),
            ActionKind::Send {
                msg: MsgId(4),
                to: client(0),
                parent: None,
                info: MsgInfo::client_to_client(Some(TxId(1))),
            },
        );
        assert_eq!(t.c2c_count(TxId(1)), 1);
    }

    #[test]
    fn read_results_accumulate_at_the_invoker() {
        let t = two_round_trace();
        let reads = t.read_results(TxId(1));
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].object, ObjectId(0));
        assert_eq!(reads[0].server, ServerId(0));
        assert!(reads[0].nonblocking, "parent is the read request itself");
        assert_eq!(reads[1].object, ObjectId(1));
        assert_eq!(reads[1].server, ServerId(1));
        assert_eq!(reads[1].versions_in_response, 1);
        assert!(t.read_results(TxId(9)).is_empty());
    }

    #[test]
    fn action_tx_attribution() {
        let t = two_round_trace();
        assert_eq!(t.actions()[0].tx(), Some(TxId(1)));
        assert_eq!(t.actions()[9].tx(), Some(TxId(1)));
    }

    /// Replays `n` copies of the two-round transaction pattern into `t`,
    /// with distinct tx and message ids per copy.
    fn replay_pattern(t: &mut Trace, n: u64) {
        for i in 0..n {
            let tx = TxId(i);
            let m = |k: u64| MsgId(i * 4 + k);
            let base = i * 10;
            t.record(base, client(0), ActionKind::Invoke { tx, kind: TxKind::Read });
            t.record(
                base + 1,
                client(0),
                ActionKind::Send {
                    msg: m(0),
                    to: server(0),
                    parent: None,
                    info: MsgInfo::read_request(tx, Some(ObjectId(0))),
                },
            );
            t.record(
                base + 2,
                server(0),
                ActionKind::Recv {
                    msg: m(0),
                    from: client(0),
                    info: MsgInfo::read_request(tx, Some(ObjectId(0))),
                },
            );
            t.record(
                base + 3,
                server(0),
                ActionKind::Send {
                    msg: m(1),
                    to: client(0),
                    parent: Some(m(0)),
                    info: MsgInfo::read_response(tx, Some(ObjectId(0)), 1),
                },
            );
            t.record(
                base + 4,
                client(0),
                ActionKind::Recv {
                    msg: m(1),
                    from: server(0),
                    info: MsgInfo::read_response(tx, Some(ObjectId(0)), 1),
                },
            );
            t.record(
                base + 5,
                client(0),
                ActionKind::Send {
                    msg: m(2),
                    to: server(1),
                    parent: Some(m(1)),
                    info: MsgInfo::read_request(tx, Some(ObjectId(1))),
                },
            );
            t.record(
                base + 6,
                server(1),
                ActionKind::Recv {
                    msg: m(2),
                    from: client(0),
                    info: MsgInfo::read_request(tx, Some(ObjectId(1))),
                },
            );
            t.record(
                base + 7,
                server(1),
                ActionKind::Send {
                    msg: m(3),
                    to: client(0),
                    parent: Some(m(2)),
                    info: MsgInfo::read_response(tx, Some(ObjectId(1)), 2),
                },
            );
            t.record(
                base + 8,
                client(0),
                ActionKind::Recv {
                    msg: m(3),
                    from: server(1),
                    info: MsgInfo::read_response(tx, Some(ObjectId(1)), 2),
                },
            );
            t.record(base + 9, client(0), ActionKind::Respond { tx });
        }
    }

    #[test]
    fn bounded_trace_aggregates_match_unbounded() {
        let mut full = Trace::new();
        let mut bounded = Trace::with_action_capacity(8);
        replay_pattern(&mut full, 20);
        replay_pattern(&mut bounded, 20);

        assert_eq!(bounded.action_capacity(), Some(8));
        assert_eq!(full.action_capacity(), None);
        assert_eq!(full.len(), 200);
        assert_eq!(bounded.len(), 200, "len counts recorded, not retained");
        assert!(bounded.actions().len() <= 16, "window is at most 2×capacity");
        assert!(bounded.actions().len() >= 8, "window keeps the newest capacity");
        assert!(bounded.evicted_len() >= 184);
        assert_eq!(full.evicted_len(), 0);

        // Every per-transaction aggregate is identical, including for
        // transactions whose actions were all evicted long ago.
        for i in 0..20u64 {
            let tx = TxId(i);
            assert_eq!(full.rounds_of(tx, client(0)), 2);
            assert_eq!(
                bounded.rounds_of(tx, client(0)),
                full.rounds_of(tx, client(0)),
                "tx {i}"
            );
            assert_eq!(bounded.c2c_count(tx), full.c2c_count(tx), "tx {i}");
            assert_eq!(bounded.read_results(tx), full.read_results(tx), "tx {i}");
            assert_eq!(bounded.read_results(tx).len(), 2);
            assert!(bounded.read_results(tx).iter().all(|r| r.nonblocking));
        }
        // The causality side table is pruned at RESP in bounded mode: every
        // transaction in this trace completed, so nothing remains, while
        // the unbounded trace keeps one entry per send.
        assert_eq!(bounded.causal_meta_len(), 0, "all transactions responded");
        assert_eq!(full.causal_meta_len(), 80, "4 sends per transaction");
        assert_eq!(full.parent_of(MsgId(2)), Some(MsgId(1)));
        assert_eq!(bounded.parent_of(MsgId(2)), None, "pruned at RESP");
        assert!(bounded.send_of(MsgId(0)).is_none(), "evicted send forgotten");
        assert!(full.send_of(MsgId(0)).is_some());
        // Retained projections only contain window actions.
        let retained_seqs: Vec<u64> = bounded.at(client(0)).iter().map(|a| a.seq).collect();
        assert!(retained_seqs.iter().all(|s| *s >= bounded.evicted_len() as u64));
        assert!(!retained_seqs.is_empty());
    }

    #[test]
    fn envelopes_carry_causality_across_traces() {
        // Two shards: the client lives in trace `a`, the server in `b`.
        // The round/non-blocking instrumentation derived at the client must
        // match what a single trace holding both processes would compute.
        let tx = TxId(1);
        let mut a = Trace::new();
        let mut b = Trace::new();
        a.record(0, client(0), ActionKind::Invoke { tx, kind: TxKind::Read });
        let req_info = MsgInfo::read_request(tx, Some(ObjectId(0)));
        a.record(
            1,
            client(0),
            ActionKind::Send { msg: MsgId(0), to: server(0), parent: None, info: req_info },
        );
        // Request crosses a → b.
        let env = a.export_envelope(MsgId(0)).expect("request meta recorded");
        assert_eq!(env.dests, vec![(server(0), 1)]);
        b.import_envelope(MsgId(0), env);
        b.record(
            2,
            server(0),
            ActionKind::Recv { msg: MsgId(0), from: client(0), info: req_info },
        );
        let resp_info = MsgInfo::read_response(tx, Some(ObjectId(0)), 1);
        b.record(
            3,
            server(0),
            ActionKind::Send {
                msg: MsgId(1),
                to: client(0),
                parent: Some(MsgId(0)),
                info: resp_info,
            },
        );
        // The server's own depth folds the imported request chain.
        assert_eq!(b.rounds_of(tx, server(0)), 2);
        // Response crosses b → a.
        let env = b.export_envelope(MsgId(1)).expect("response meta recorded");
        assert_eq!(env.parent_kind, Some(MsgKind::ReadRequest));
        assert_eq!(env.parent_tx, Some(tx));
        let mut dests = env.dests.clone();
        dests.sort();
        assert_eq!(dests, vec![(client(0), 1), (server(0), 1)]);
        a.import_envelope(MsgId(1), env);
        a.record(
            4,
            client(0),
            ActionKind::Recv { msg: MsgId(1), from: server(0), info: resp_info },
        );
        // Imported metadata reports no locally walkable parent…
        assert_eq!(a.parent_of(MsgId(1)), None);
        // …but the non-blocking verdict still sees the cross-shard parent.
        let reads = a.read_results(tx);
        assert_eq!(reads.len(), 1);
        assert!(reads[0].nonblocking, "parent was the read request itself");
        // A second-round send at the client counts the imported response.
        a.record(
            5,
            client(0),
            ActionKind::Send {
                msg: MsgId(2),
                to: server(1),
                parent: Some(MsgId(1)),
                info: MsgInfo::read_request(tx, Some(ObjectId(1))),
            },
        );
        assert_eq!(a.rounds_of(tx, client(0)), 2);
    }

    #[test]
    fn bounded_trace_keeps_causality_until_resp() {
        let tx = TxId(1);
        let mut t = Trace::with_action_capacity(64);
        t.record(0, client(0), ActionKind::Invoke { tx, kind: TxKind::Read });
        t.record(
            1,
            client(0),
            ActionKind::Send {
                msg: MsgId(0),
                to: server(0),
                parent: None,
                info: MsgInfo::read_request(tx, Some(ObjectId(0))),
            },
        );
        t.record(
            2,
            server(0),
            ActionKind::Send {
                msg: MsgId(1),
                to: client(0),
                parent: Some(MsgId(0)),
                info: MsgInfo::read_response(tx, Some(ObjectId(0)), 1),
            },
        );
        // While the transaction is in flight, causality is queryable.
        assert_eq!(t.causal_meta_len(), 2);
        assert_eq!(t.parent_of(MsgId(1)), Some(MsgId(0)));
        t.record(3, client(0), ActionKind::Respond { tx });
        // At RESP the side table is emptied; aggregates are untouched.
        assert_eq!(t.causal_meta_len(), 0);
        assert_eq!(t.parent_of(MsgId(1)), None);
        assert_eq!(t.rounds_of(tx, client(0)), 1);
    }

    #[test]
    fn commit_log_iterates_and_retires_in_resp_order() {
        let mut t = Trace::with_action_capacity(8);
        replay_pattern(&mut t, 20);
        assert_eq!(t.commit_count(), 20);
        assert_eq!(t.retired_commits(), 0);
        // The log is in RESP order even though the action window evicted
        // almost everything.
        let all: Vec<TxId> = t.commits_since(0).collect();
        assert_eq!(all, (0..20).map(TxId).collect::<Vec<_>>());
        // A cursor resumes mid-log without re-yielding drained entries.
        let tail: Vec<TxId> = t.commits_since(17).collect();
        assert_eq!(tail, vec![TxId(17), TxId(18), TxId(19)]);
        // Retiring a prefix drops its storage but not the numbering.
        t.retire_commits(17);
        assert_eq!(t.retired_commits(), 17);
        assert_eq!(t.commit_count(), 20);
        assert_eq!(t.commits_since(17).collect::<Vec<_>>(), tail);
        // A stale cursor starts at the oldest live entry; retiring past
        // the end is clamped.
        assert_eq!(t.commits_since(0).count(), 3);
        t.retire_commits(100);
        assert_eq!(t.retired_commits(), 20);
        assert_eq!(t.commits_since(0).count(), 0);
    }
}
