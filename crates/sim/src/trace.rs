//! Action traces: the external actions of an execution, in order.
//!
//! A [`Trace`] is the executable analogue of the paper's executions
//! `σ₀, a₁, σ₁, …`: we record only the actions (the paper does the same to
//! "simplify notation"), each tagged with the automaton at which it occurs,
//! the simulation time, and — for sends — the causal parent message.

use crate::message::{MsgId, MsgInfo, MsgKind};
use snow_core::{ProcessId, TxId, TxKind};

/// The kind of an externally visible action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionKind {
    /// INV(T): a transaction was invoked at a client.
    Invoke {
        /// The transaction.
        tx: TxId,
        /// READ or WRITE.
        kind: TxKind,
    },
    /// RESP(T): a transaction completed at a client.
    Respond {
        /// The transaction.
        tx: TxId,
    },
    /// `send(m)_{at,to}`: the process emitted a message.
    Send {
        /// Message id.
        msg: MsgId,
        /// Destination process.
        to: ProcessId,
        /// The message (or invocation handler) that causally produced this
        /// send; `None` if it was produced while handling an invocation.
        parent: Option<MsgId>,
        /// Classification of the message.
        info: MsgInfo,
    },
    /// `recv(m)_{from,at}`: the process received a message.
    Recv {
        /// Message id.
        msg: MsgId,
        /// Originating process.
        from: ProcessId,
        /// Classification of the message.
        info: MsgInfo,
    },
}

/// One externally visible action of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    /// Position of the action in the execution (0-based).
    pub seq: u64,
    /// Simulation time at which the action occurred.
    pub time: u64,
    /// The automaton at which the action occurred.
    pub at: ProcessId,
    /// What happened.
    pub kind: ActionKind,
}

impl Action {
    /// The transaction this action belongs to, if it can be attributed.
    pub fn tx(&self) -> Option<TxId> {
        match &self.kind {
            ActionKind::Invoke { tx, .. } | ActionKind::Respond { tx } => Some(*tx),
            ActionKind::Send { info, .. } | ActionKind::Recv { info, .. } => info.tx,
        }
    }
}

/// The ordered list of external actions of one execution.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    actions: Vec<Action>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an action, assigning it the next sequence number.
    pub fn record(&mut self, time: u64, at: ProcessId, kind: ActionKind) {
        let seq = self.actions.len() as u64;
        self.actions.push(Action { seq, time, at, kind });
    }

    /// All actions in order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of actions recorded.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The actions occurring at one automaton, in order — the projection
    /// `trace(α)|p` the indistinguishability arguments use.
    pub fn at(&self, p: ProcessId) -> Vec<&Action> {
        self.actions.iter().filter(|a| a.at == p).collect()
    }

    /// The actions attributable to one transaction, in order.
    pub fn of_tx(&self, tx: TxId) -> Vec<&Action> {
        self.actions.iter().filter(|a| a.tx() == Some(tx)).collect()
    }

    /// Finds the send action for a given message id.
    pub fn send_of(&self, msg: MsgId) -> Option<&Action> {
        self.actions.iter().find(|a| matches!(&a.kind, ActionKind::Send { msg: m, .. } if *m == msg))
    }

    /// Finds the receive action for a given message id.
    pub fn recv_of(&self, msg: MsgId) -> Option<&Action> {
        self.actions.iter().find(|a| matches!(&a.kind, ActionKind::Recv { msg: m, .. } if *m == msg))
    }

    /// The causal parent of a message: the message whose handler sent it.
    pub fn parent_of(&self, msg: MsgId) -> Option<MsgId> {
        self.send_of(msg).and_then(|a| match &a.kind {
            ActionKind::Send { parent, .. } => *parent,
            _ => None,
        })
    }

    /// Number of client-to-client messages attributed to `tx`.
    pub fn c2c_count(&self, tx: TxId) -> u32 {
        self.actions
            .iter()
            .filter(|a| {
                matches!(
                    &a.kind,
                    ActionKind::Send { info, .. }
                        if info.kind == MsgKind::ClientToClient && info.tx == Some(tx)
                )
            })
            .count() as u32
    }

    /// The number of client↔server round trips transaction `tx` used,
    /// derived purely from causality: a send by the client whose parent
    /// chain passes through `d` prior server responses belongs to round
    /// `d + 1`.
    pub fn rounds_of(&self, tx: TxId, client: ProcessId) -> u32 {
        let mut max_round = 0u32;
        for a in &self.actions {
            if a.at != client || a.tx() != Some(tx) {
                continue;
            }
            if let ActionKind::Send { parent, info, .. } = &a.kind {
                if info.kind == MsgKind::ClientToClient {
                    continue;
                }
                let mut depth = 1u32;
                let mut cur = *parent;
                while let Some(p) = cur {
                    // Each parent hop that is a message received by the
                    // client (i.e. a server response it was handling when it
                    // sent the next request) adds a round.
                    if let Some(send) = self.send_of(p) {
                        if let ActionKind::Send { to, parent, .. } = &send.kind {
                            if *to == client {
                                depth += 1;
                            }
                            cur = *parent;
                            continue;
                        }
                    }
                    break;
                }
                max_round = max_round.max(depth);
            }
        }
        max_round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_core::{ClientId, ObjectId, ServerId};

    fn client(i: u32) -> ProcessId {
        ProcessId::Client(ClientId(i))
    }
    fn server(i: u32) -> ProcessId {
        ProcessId::Server(ServerId(i))
    }

    /// Builds a small two-round trace:
    ///  c0: INV(tx1), send m0 -> s0 (round 1)
    ///  s0: recv m0, send m1 -> c0
    ///  c0: recv m1, send m2 -> s1 (round 2, parent m1)
    ///  s1: recv m2, send m3 -> c0
    ///  c0: recv m3, RESP(tx1)
    fn two_round_trace() -> Trace {
        let tx = TxId(1);
        let mut t = Trace::new();
        t.record(0, client(0), ActionKind::Invoke { tx, kind: TxKind::Read });
        t.record(
            1,
            client(0),
            ActionKind::Send {
                msg: MsgId(0),
                to: server(0),
                parent: None,
                info: MsgInfo::read_request(tx, Some(ObjectId(0))),
            },
        );
        t.record(
            2,
            server(0),
            ActionKind::Recv {
                msg: MsgId(0),
                from: client(0),
                info: MsgInfo::read_request(tx, Some(ObjectId(0))),
            },
        );
        t.record(
            3,
            server(0),
            ActionKind::Send {
                msg: MsgId(1),
                to: client(0),
                parent: Some(MsgId(0)),
                info: MsgInfo::read_response(tx, Some(ObjectId(0)), 1),
            },
        );
        t.record(
            4,
            client(0),
            ActionKind::Recv {
                msg: MsgId(1),
                from: server(0),
                info: MsgInfo::read_response(tx, Some(ObjectId(0)), 1),
            },
        );
        t.record(
            5,
            client(0),
            ActionKind::Send {
                msg: MsgId(2),
                to: server(1),
                parent: Some(MsgId(1)),
                info: MsgInfo::read_request(tx, Some(ObjectId(1))),
            },
        );
        t.record(
            6,
            server(1),
            ActionKind::Recv {
                msg: MsgId(2),
                from: client(0),
                info: MsgInfo::read_request(tx, Some(ObjectId(1))),
            },
        );
        t.record(
            7,
            server(1),
            ActionKind::Send {
                msg: MsgId(3),
                to: client(0),
                parent: Some(MsgId(2)),
                info: MsgInfo::read_response(tx, Some(ObjectId(1)), 1),
            },
        );
        t.record(
            8,
            client(0),
            ActionKind::Recv {
                msg: MsgId(3),
                from: server(1),
                info: MsgInfo::read_response(tx, Some(ObjectId(1)), 1),
            },
        );
        t.record(9, client(0), ActionKind::Respond { tx });
        t
    }

    #[test]
    fn projections_and_lookup() {
        let t = two_round_trace();
        assert_eq!(t.len(), 10);
        assert!(!t.is_empty());
        assert_eq!(t.at(client(0)).len(), 6);
        assert_eq!(t.at(server(0)).len(), 2);
        assert_eq!(t.of_tx(TxId(1)).len(), 10);
        assert_eq!(t.of_tx(TxId(9)).len(), 0);
        assert!(t.send_of(MsgId(2)).is_some());
        assert!(t.recv_of(MsgId(3)).is_some());
        assert_eq!(t.parent_of(MsgId(2)), Some(MsgId(1)));
        assert_eq!(t.parent_of(MsgId(0)), None);
    }

    #[test]
    fn round_counting_follows_causality() {
        let t = two_round_trace();
        // m0 is round 1; m2's parent chain passes through m1 (a response to
        // the client), so it is round 2.
        assert_eq!(t.rounds_of(TxId(1), client(0)), 2);
        assert_eq!(t.rounds_of(TxId(9), client(0)), 0);
    }

    #[test]
    fn c2c_counting() {
        let mut t = two_round_trace();
        assert_eq!(t.c2c_count(TxId(1)), 0);
        t.record(
            10,
            client(1),
            ActionKind::Send {
                msg: MsgId(4),
                to: client(0),
                parent: None,
                info: MsgInfo::client_to_client(Some(TxId(1))),
            },
        );
        assert_eq!(t.c2c_count(TxId(1)), 1);
    }

    #[test]
    fn action_tx_attribution() {
        let t = two_round_trace();
        assert_eq!(t.actions()[0].tx(), Some(TxId(1)));
        assert_eq!(t.actions()[9].tx(), Some(TxId(1)));
    }
}
