//! Messages in flight on the simulated network.
//!
//! The protocol-agnostic classification vocabulary ([`MsgId`], [`MsgKind`],
//! [`MsgInfo`], [`SimMessage`]) lives in `snow-core` (`snow_core::msg`) so
//! that every execution substrate shares it; this module re-exports it and
//! adds the simulator-specific [`PendingMessage`] envelope (send time,
//! causal parent, scheduler-assigned delivery time).

pub use snow_core::{MsgId, MsgInfo, MsgKind};

/// Re-export of [`snow_core::ProtocolMessage`] under its historical
/// simulator name.
pub use snow_core::ProtocolMessage as SimMessage;

use snow_core::ProcessId;

/// A message that has been sent but not yet delivered.
#[derive(Debug, Clone)]
pub struct PendingMessage<M> {
    /// Unique id of this message.
    pub id: MsgId,
    /// Sender.
    pub src: ProcessId,
    /// Destination.
    pub dst: ProcessId,
    /// The payload.
    pub msg: M,
    /// Simulation time at which the send action occurred.
    pub sent_at: u64,
    /// The message whose handler produced this send, if any (causal parent).
    pub parent: Option<MsgId>,
    /// Delivery time assigned by a latency-modelling scheduler, if any.
    pub deliver_at: Option<u64>,
}

impl<M> PendingMessage<M> {
    /// The delivery-queue key this message is ordered by: the scheduler's
    /// stamped delivery time, else the send time (under a monotone clock
    /// both orders FIFO delivery by send order).  The single source of
    /// the rule shared by [`crate::MessagePool`]'s heap and the parallel
    /// engine's cross-shard routing order.
    pub fn delivery_key(&self) -> u64 {
        self.deliver_at.unwrap_or(self.sent_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow_core::ClientId;

    #[derive(Debug, Clone)]
    struct Dummy;
    impl SimMessage for Dummy {}

    #[test]
    fn pending_message_carries_causality() {
        let p = PendingMessage {
            id: MsgId(5),
            src: ProcessId::Client(ClientId(0)),
            dst: ProcessId::Client(ClientId(1)),
            msg: Dummy,
            sent_at: 10,
            parent: Some(MsgId(2)),
            deliver_at: None,
        };
        assert_eq!(p.id.to_string(), "m5");
        assert_eq!(p.parent, Some(MsgId(2)));
    }

    #[test]
    fn core_trait_is_usable_under_the_sim_alias() {
        let info = Dummy.info();
        assert_eq!(info.kind, MsgKind::Control);
    }
}
