//! # snow
//!
//! Facade crate for the `snow-rs` workspace: a reproduction of
//! *"SNOW Revisited: Understanding When Ideal READ Transactions Are
//! Possible"* (Konwar, Lloyd, Lu, Lynch).
//!
//! Re-exports every workspace crate under a short module name; see
//! `README.md` for the quickstart and `ARCHITECTURE.md` for the crate map,
//! the `Process`/`Effects` contract and the three execution substrates.

#![forbid(unsafe_code)]

pub use snow_checker as checker;
pub use snow_core as core;
pub use snow_impossibility as impossibility;
pub use snow_obs as obs;
pub use snow_protocols as protocols;
pub use snow_runtime as runtime;
pub use snow_sim as sim;
pub use snow_workload as workload;
